package markov

import (
	"testing"

	"pufferfish/internal/floats"
	"pufferfish/internal/matrix"
)

func TestSingletonClass(t *testing.T) {
	c := theta1()
	s, err := NewSingleton(c, 50)
	if err != nil {
		t.Fatal(err)
	}
	if s.K() != 2 || s.T() != 50 || len(s.Chains()) != 1 {
		t.Error("singleton accessors wrong")
	}
	pm, err := s.PiMin()
	if err != nil || !floats.Eq(pm, 0.2, 1e-9) {
		t.Errorf("PiMin = %v err=%v", pm, err)
	}
	// θ1 is reversible, so Gap uses the eq 14 reversible overload: 1.
	g, err := s.Gap()
	if err != nil || !floats.Eq(g, 1, 1e-9) {
		t.Errorf("Gap = %v err=%v", g, err)
	}
	rev, err := s.Reversible()
	if err != nil || !rev {
		t.Error("θ1 should be reversible")
	}
	if s.AllInitialDistributions() {
		t.Error("singleton should not claim all initial distributions")
	}
	if _, err := NewSingleton(c, 0); err == nil {
		t.Error("T=0 accepted")
	}
	if _, err := NewSingleton(Chain{}, 5); err == nil {
		t.Error("invalid chain accepted")
	}
}

func TestBinaryIntervalAccessors(t *testing.T) {
	b, err := NewBinaryInterval(0.2, 0.8, 30)
	if err != nil {
		t.Fatal(err)
	}
	if b.K() != 2 || b.T() != 30 {
		t.Error("accessors wrong")
	}
	b.GridN = 1
	if got := len(b.Chains()); got != 1 {
		t.Errorf("GridN=1 gave %d chains", got)
	}
	point, err := NewBinaryInterval(0.4, 0.4, 10)
	if err != nil {
		t.Fatal(err)
	}
	if got := len(point.Chains()); got != 1 {
		t.Errorf("degenerate interval gave %d chains", got)
	}
}

func TestFiniteAccessors(t *testing.T) {
	f, err := NewFinite([]Chain{theta1()}, 10)
	if err != nil {
		t.Fatal(err)
	}
	if f.K() != 2 || f.T() != 10 || len(f.Chains()) != 1 {
		t.Error("accessors wrong")
	}
	if f.AllInitialDistributions() {
		t.Error("AllQ should default false")
	}
	f.AllQ = true
	if !f.AllInitialDistributions() {
		t.Error("AllQ flag not honored")
	}
	// Memoized reversibility check returns the same answer twice.
	r1, err := f.Reversible()
	if err != nil {
		t.Fatal(err)
	}
	r2, err := f.Reversible()
	if err != nil || r1 != r2 {
		t.Error("memoized Reversible inconsistent")
	}
	// Mixed-cardinality class rejected.
	c3 := MustNew([]float64{1, 0, 0}, matrix.FromRows([][]float64{
		{0.5, 0.25, 0.25}, {0.2, 0.6, 0.2}, {0.3, 0.3, 0.4},
	}))
	if _, err := NewFinite([]Chain{theta1(), c3}, 10); err == nil {
		t.Error("mixed state counts accepted")
	}
}

func TestEigengapDispatch(t *testing.T) {
	// Reversible chain: Eigengap picks the reversible overload.
	rev := theta1()
	g, err := rev.Eigengap()
	if err != nil || !floats.Eq(g, 1, 1e-9) {
		t.Errorf("reversible dispatch: %v err=%v", g, err)
	}
	// Non-reversible 3-state chain: falls to the multiplicative gap.
	nonrev := MustNew([]float64{1.0 / 3, 1.0 / 3, 1.0 / 3}, matrix.FromRows([][]float64{
		{0.1, 0.8, 0.1},
		{0.1, 0.1, 0.8},
		{0.8, 0.1, 0.1},
	}))
	ok, err := nonrev.Reversible(1e-9)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Fatal("rotation chain should not be reversible")
	}
	g, err = nonrev.Eigengap()
	if err != nil {
		t.Fatal(err)
	}
	gm, err := nonrev.EigengapMultiplicative()
	if err != nil {
		t.Fatal(err)
	}
	if !floats.Eq(g, gm, 1e-12) {
		t.Errorf("non-reversible dispatch wrong: %v vs %v", g, gm)
	}
	if _, err := nonrev.EigengapReversible(); err == nil {
		t.Error("EigengapReversible should reject non-reversible chains")
	}
}

func TestCloneIsDeep(t *testing.T) {
	c := theta1()
	cl := c.Clone()
	cl.Init[0] = 0.1
	cl.P.Set(0, 0, 0.5)
	if c.Init[0] != 1 || c.P.At(0, 0) != 0.9 {
		t.Error("Clone shares state with original")
	}
}

func TestPeriodPureCycle(t *testing.T) {
	// Pure 4-cycle: BFS finds no chord, falling back to the cycle
	// length through state 0.
	cyc := MustNew([]float64{1, 0, 0, 0}, matrix.FromRows([][]float64{
		{0, 1, 0, 0},
		{0, 0, 1, 0},
		{0, 0, 0, 1},
		{1, 0, 0, 0},
	}))
	p, err := cyc.Period()
	if err != nil {
		t.Fatal(err)
	}
	if p != 4 {
		t.Errorf("period = %d, want 4", p)
	}
}
