package markov

import (
	"math"
	"math/rand/v2"
	"testing"
	"testing/quick"

	"pufferfish/internal/floats"
	"pufferfish/internal/matrix"
)

// theta1 and theta2 are the Section 4.4 running example chains.
func theta1() Chain {
	return MustNew([]float64{1, 0}, matrix.FromRows([][]float64{{0.9, 0.1}, {0.4, 0.6}}))
}

func theta2() Chain {
	return MustNew([]float64{0.9, 0.1}, matrix.FromRows([][]float64{{0.8, 0.2}, {0.3, 0.7}}))
}

func TestValidate(t *testing.T) {
	if _, err := NewFromRows([]float64{0.5, 0.5}, [][]float64{{0.9, 0.1}, {0.4, 0.6}}); err != nil {
		t.Errorf("valid chain rejected: %v", err)
	}
	if _, err := NewFromRows([]float64{0.7, 0.5}, [][]float64{{0.9, 0.1}, {0.4, 0.6}}); err == nil {
		t.Error("bad init accepted")
	}
	if _, err := NewFromRows([]float64{0.5, 0.5}, [][]float64{{0.9, 0.2}, {0.4, 0.6}}); err == nil {
		t.Error("non-stochastic row accepted")
	}
	if _, err := NewFromRows([]float64{1}, [][]float64{{0.9, 0.1}, {0.4, 0.6}}); err == nil {
		t.Error("wrong init length accepted")
	}
}

// TestStationaryRunningExample checks the paper's stationary values:
// θ1 has π = [0.8, 0.2] and θ2 has π = [0.6, 0.4] (Section 4.4.2).
func TestStationaryRunningExample(t *testing.T) {
	pi1, err := theta1().Stationary()
	if err != nil {
		t.Fatal(err)
	}
	if !floats.EqSlices(pi1, []float64{0.8, 0.2}, 1e-9) {
		t.Errorf("π(θ1) = %v, want [0.8 0.2]", pi1)
	}
	pi2, err := theta2().Stationary()
	if err != nil {
		t.Fatal(err)
	}
	if !floats.EqSlices(pi2, []float64{0.6, 0.4}, 1e-9) {
		t.Errorf("π(θ2) = %v, want [0.6 0.4]", pi2)
	}
	// π^min values quoted in the paper: 0.2 and 0.4.
	if v, _ := theta1().PiMin(); !floats.Eq(v, 0.2, 1e-9) {
		t.Errorf("PiMin(θ1) = %v", v)
	}
	if v, _ := theta2().PiMin(); !floats.Eq(v, 0.4, 1e-9) {
		t.Errorf("PiMin(θ2) = %v", v)
	}
}

// TestTimeReversalRunningExample: the paper notes both running-example
// chains equal their own time reversal (two-state chains are
// reversible).
func TestTimeReversalRunningExample(t *testing.T) {
	for _, c := range []Chain{theta1(), theta2()} {
		rev, err := c.TimeReversal()
		if err != nil {
			t.Fatal(err)
		}
		for x := 0; x < 2; x++ {
			for y := 0; y < 2; y++ {
				if !floats.Eq(rev.At(x, y), c.P.At(x, y), 1e-9) {
					t.Errorf("P* != P at (%d,%d): %v vs %v", x, y, rev.At(x, y), c.P.At(x, y))
				}
			}
		}
		ok, err := c.Reversible(1e-9)
		if err != nil || !ok {
			t.Errorf("chain should be reversible (ok=%v err=%v)", ok, err)
		}
	}
}

// TestEigengapRunningExample: the paper computes the eigengap of
// P·P* as 0.75 for both θ1 and θ2 (Section 4.4.2).
func TestEigengapRunningExample(t *testing.T) {
	for i, c := range []Chain{theta1(), theta2()} {
		g, err := c.EigengapMultiplicative()
		if err != nil {
			t.Fatal(err)
		}
		if !floats.Eq(g, 0.75, 1e-9) {
			t.Errorf("θ%d: multiplicative eigengap = %v, want 0.75", i+1, g)
		}
	}
	// Reversible overload: λ2(θ1) = 0.5 → g = 2·(1−0.5) = 1.
	g, err := theta1().EigengapReversible()
	if err != nil {
		t.Fatal(err)
	}
	if !floats.Eq(g, 1.0, 1e-9) {
		t.Errorf("reversible eigengap(θ1) = %v, want 1", g)
	}
}

func TestStationaryIsInvariant(t *testing.T) {
	f := func(seed uint64) bool {
		r := rand.New(rand.NewPCG(seed, 29))
		c := randomIrreducibleChain(r, 2+r.IntN(5))
		pi, err := c.Stationary()
		if err != nil {
			return false
		}
		return floats.EqSlices(c.P.VecMul(pi), pi, 1e-8)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestTimeReversalProperties(t *testing.T) {
	// P* is stochastic, has the same stationary distribution, and
	// (P*)* = P.
	f := func(seed uint64) bool {
		r := rand.New(rand.NewPCG(seed, 31))
		c := randomIrreducibleChain(r, 2+r.IntN(4))
		rev, err := c.TimeReversal()
		if err != nil {
			return false
		}
		k := c.K()
		for i := 0; i < k; i++ {
			if !floats.IsProbVector(rev.RawRow(i), 1e-8) {
				return false
			}
		}
		pi, _ := c.Stationary()
		revChain := MustNew(pi, rev)
		pi2, err := revChain.Stationary()
		if err != nil || !floats.EqSlices(pi, pi2, 1e-7) {
			return false
		}
		back, err := revChain.TimeReversal()
		if err != nil {
			return false
		}
		for i := 0; i < k; i++ {
			if !floats.EqSlices(back.RawRow(i), c.P.RawRow(i), 1e-7) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestIrreducibleAndPeriod(t *testing.T) {
	// Reducible: absorbing state.
	red := MustNew([]float64{0.5, 0.5}, matrix.FromRows([][]float64{{1, 0}, {0.5, 0.5}}))
	if red.Irreducible() {
		t.Error("absorbing chain reported irreducible")
	}
	if _, err := red.Stationary(); err == nil {
		t.Error("Stationary should fail on reducible chain")
	}
	// Periodic: two-cycle.
	per := MustNew([]float64{1, 0}, matrix.FromRows([][]float64{{0, 1}, {1, 0}}))
	if !per.Irreducible() {
		t.Error("two-cycle should be irreducible")
	}
	if p, err := per.Period(); err != nil || p != 2 {
		t.Errorf("period = %v err=%v, want 2", p, err)
	}
	if ok, _ := per.Aperiodic(); ok {
		t.Error("two-cycle reported aperiodic")
	}
	// Aperiodic.
	if p, err := theta1().Period(); err != nil || p != 1 {
		t.Errorf("θ1 period = %v err=%v, want 1", p, err)
	}
	// Three-cycle period.
	cyc3 := MustNew([]float64{1, 0, 0}, matrix.FromRows([][]float64{{0, 1, 0}, {0, 0, 1}, {1, 0, 0}}))
	if p, err := cyc3.Period(); err != nil || p != 3 {
		t.Errorf("3-cycle period = %v err=%v, want 3", p, err)
	}
}

func TestMarginals(t *testing.T) {
	c := theta1()
	m := c.Marginals(3)
	if !floats.EqSlices(m[0], []float64{1, 0}, 0) {
		t.Errorf("m1 = %v", m[0])
	}
	if !floats.EqSlices(m[1], []float64{0.9, 0.1}, 1e-12) {
		t.Errorf("m2 = %v", m[1])
	}
	// m3 = m2·P = [0.9·0.9+0.1·0.4, 0.9·0.1+0.1·0.6] = [0.85, 0.15]
	if !floats.EqSlices(m[2], []float64{0.85, 0.15}, 1e-12) {
		t.Errorf("m3 = %v", m[2])
	}
}

func TestPowerCache(t *testing.T) {
	c := theta1()
	pc := NewPowerCache(c.P)
	for _, n := range []int{3, 1, 5, 0, 2} {
		want := c.P.Pow(n)
		got := pc.Pow(n)
		r, cols := want.Dims()
		for i := 0; i < r; i++ {
			for j := 0; j < cols; j++ {
				if !floats.Eq(got.At(i, j), want.At(i, j), 1e-12) {
					t.Fatalf("Pow(%d) mismatch at (%d,%d)", n, i, j)
				}
			}
		}
	}
}

func TestSampleMatchesMarginals(t *testing.T) {
	c := theta2()
	rng := rand.New(rand.NewPCG(41, 42))
	T := 5
	n := 100000
	counts := make([][]float64, T)
	for i := range counts {
		counts[i] = make([]float64, 2)
	}
	for i := 0; i < n; i++ {
		seq := c.Sample(T, rng)
		for t2, x := range seq {
			counts[t2][x]++
		}
	}
	marg := c.Marginals(T)
	for t2 := 0; t2 < T; t2++ {
		for x := 0; x < 2; x++ {
			got := counts[t2][x] / float64(n)
			if math.Abs(got-marg[t2][x]) > 0.01 {
				t.Errorf("empirical P(X_%d=%d) = %v, want %v", t2+1, x, got, marg[t2][x])
			}
		}
	}
}

func TestEstimateRecoversChain(t *testing.T) {
	truth := BinaryChain(0.6, 0.85, 0.7)
	rng := rand.New(rand.NewPCG(51, 52))
	var seqs [][]int
	for i := 0; i < 200; i++ {
		seqs = append(seqs, truth.Sample(500, rng))
	}
	est, err := Estimate(seqs, 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(est.P.At(0, 0)-0.85) > 0.01 || math.Abs(est.P.At(1, 1)-0.7) > 0.01 {
		t.Errorf("estimated P = %v", est.P)
	}
	if math.Abs(est.Init[0]-0.6) > 0.05 {
		t.Errorf("estimated init = %v", est.Init)
	}
}

func TestEstimateSmoothingKeepsIrreducible(t *testing.T) {
	// A sequence that never visits state 2 as a source.
	seqs := [][]int{{0, 1, 0, 1, 0}}
	c, err := Estimate(seqs, 3, 1e-3)
	if err != nil {
		t.Fatal(err)
	}
	if !c.Irreducible() {
		t.Error("smoothed estimate should be irreducible")
	}
	if _, err := Estimate(nil, 3, 0); err == nil {
		t.Error("empty data accepted")
	}
	if _, err := Estimate([][]int{{5}}, 3, 0); err == nil {
		t.Error("out-of-range state accepted")
	}
}

func TestEstimateStationary(t *testing.T) {
	truth := BinaryChain(0.1, 0.9, 0.6)
	rng := rand.New(rand.NewPCG(61, 62))
	seqs := [][]int{truth.Sample(20000, rng)}
	c, err := EstimateStationary(seqs, 2, 1e-6)
	if err != nil {
		t.Fatal(err)
	}
	pi, err := c.Stationary()
	if err != nil {
		t.Fatal(err)
	}
	if !floats.EqSlices(c.Init, pi, 1e-9) {
		t.Errorf("init %v != stationary %v", c.Init, pi)
	}
}

func randomIrreducibleChain(r *rand.Rand, k int) Chain {
	rows := make([][]float64, k)
	for i := range rows {
		rows[i] = make([]float64, k)
		var tot float64
		for j := range rows[i] {
			rows[i][j] = r.Float64() + 0.02 // strictly positive → irreducible
			tot += rows[i][j]
		}
		for j := range rows[i] {
			rows[i][j] /= tot
		}
	}
	init := make([]float64, k)
	var tot float64
	for i := range init {
		init[i] = r.Float64() + 0.01
		tot += init[i]
	}
	for i := range init {
		init[i] /= tot
	}
	return MustNew(init, matrix.FromRows(rows))
}
