// Package markov implements discrete-time, finite-state,
// time-homogeneous Markov chains and the chain-theoretic quantities
// Section 4.4 of the paper builds MQMExact and MQMApprox from:
// stationary distributions, the time-reversal chain (Definition 4.7),
// the eigengap g_Θ (eq 7, and the reversible overload of eq 14), the
// minimum stationary mass π^min_Θ (eq 6), irreducibility and
// aperiodicity checks, empirical estimation, and the distribution
// classes Θ used in the experiments.
package markov

import (
	"errors"
	"fmt"
	"math/rand/v2"

	"pufferfish/internal/floats"
	"pufferfish/internal/matrix"
)

// probTol is the tolerance for validating stochastic vectors/matrices.
const probTol = 1e-8

// Chain is a time-homogeneous Markov chain over states {0, …, k−1}
// with initial distribution Init and row-stochastic transition matrix
// P: P.At(x, y) = P(X_{t+1} = y | X_t = x).
type Chain struct {
	Init []float64
	P    *matrix.Dense
}

// New validates and returns a chain. The initial distribution must be
// a probability vector of length k and P a k×k row-stochastic matrix.
func New(init []float64, p *matrix.Dense) (Chain, error) {
	c := Chain{Init: init, P: p}
	if err := c.Validate(); err != nil {
		return Chain{}, err
	}
	return c, nil
}

// MustNew is New that panics on error, for tests and fixtures.
func MustNew(init []float64, p *matrix.Dense) Chain {
	c, err := New(init, p)
	if err != nil {
		panic(err)
	}
	return c
}

// NewFromRows builds a chain from slice literals.
func NewFromRows(init []float64, rows [][]float64) (Chain, error) {
	return New(init, matrix.FromRows(rows))
}

// Validate checks the stochasticity constraints.
func (c Chain) Validate() error {
	if c.P == nil {
		return errors.New("markov: nil transition matrix")
	}
	r, cl := c.P.Dims()
	if r != cl {
		return fmt.Errorf("markov: transition matrix is %d×%d, not square", r, cl)
	}
	if len(c.Init) != r {
		return fmt.Errorf("markov: initial distribution has length %d, want %d", len(c.Init), r)
	}
	if !floats.IsProbVector(c.Init, probTol) {
		return fmt.Errorf("markov: initial distribution %v is not a probability vector", c.Init)
	}
	for i := 0; i < r; i++ {
		if !floats.IsProbVector(c.P.RawRow(i), probTol) {
			return fmt.Errorf("markov: transition row %d is not a probability vector: %v", i, c.P.Row(i))
		}
	}
	return nil
}

// K returns the number of states.
func (c Chain) K() int {
	r, _ := c.P.Dims()
	return r
}

// Clone returns a deep copy.
func (c Chain) Clone() Chain {
	init := make([]float64, len(c.Init))
	copy(init, c.Init)
	return Chain{Init: init, P: c.P.Clone()}
}

// WithInit returns a copy of the chain with a different initial
// distribution (the transition matrix is shared).
func (c Chain) WithInit(init []float64) (Chain, error) {
	nc := Chain{Init: init, P: c.P}
	if err := nc.Validate(); err != nil {
		return Chain{}, err
	}
	return nc, nil
}

// Sample draws a trajectory X_1, …, X_T.
func (c Chain) Sample(T int, rng *rand.Rand) []int {
	if T <= 0 {
		return nil
	}
	out := make([]int, T)
	out[0] = sampleIndex(c.Init, rng)
	for t := 1; t < T; t++ {
		out[t] = sampleIndex(c.P.RawRow(out[t-1]), rng)
	}
	return out
}

func sampleIndex(probs []float64, rng *rand.Rand) int {
	u := rng.Float64()
	var cum float64
	for i, p := range probs {
		cum += p
		if u < cum {
			return i
		}
	}
	return len(probs) - 1
}

// Marginals returns the marginal distributions m_i = P(X_i = ·) for
// i = 1..T as rows of a T×k slice (index 0 is X_1 = Init). The rows are
// views into one slab, so the whole table costs two allocations.
func (c Chain) Marginals(T int) [][]float64 {
	if T < 1 {
		return nil
	}
	k := len(c.Init)
	out := make([][]float64, T)
	slab := make([]float64, T*k)
	copy(slab[:k], c.Init)
	out[0] = slab[:k:k]
	for t := 1; t < T; t++ {
		row := slab[t*k : (t+1)*k : (t+1)*k]
		c.P.VecMulInto(row, out[t-1])
		out[t] = row
	}
	return out
}

// PowerCache memoizes consecutive powers P, P², …, Pⁿ of a transition
// matrix. MQMExact evaluates transition kernels at every quilt
// distance up to ℓ; sharing one cache makes that O(ℓk³) total. It is
// the slab-backed, concurrency-safe matrix.PowerCache.
type PowerCache = matrix.PowerCache

// NewPowerCache returns an empty cache for p.
func NewPowerCache(p *matrix.Dense) *PowerCache {
	return matrix.NewPowerCache(p)
}
