package markov

import (
	"errors"
	"fmt"
)

// Estimate fits a time-homogeneous chain to one or more observed state
// sequences over states {0,…,k−1} by maximum likelihood with additive
// (Laplace) smoothing: transition counts get +smoothing in every cell
// before normalization, and the initial distribution is the smoothed
// empirical distribution of sequence starts.
//
// The experiments follow the paper (Section 5.3): the empirical matrix
// from the data is the model class, so a little smoothing keeps the
// chain irreducible when rare transitions are unobserved. smoothing=0
// reproduces the raw MLE.
func Estimate(seqs [][]int, k int, smoothing float64) (Chain, error) {
	if k <= 0 {
		return Chain{}, fmt.Errorf("markov: invalid state count %d", k)
	}
	if smoothing < 0 {
		return Chain{}, fmt.Errorf("markov: negative smoothing %v", smoothing)
	}
	counts := make([][]float64, k)
	for i := range counts {
		counts[i] = make([]float64, k)
		for j := range counts[i] {
			counts[i][j] = smoothing
		}
	}
	initCounts := make([]float64, k)
	for i := range initCounts {
		initCounts[i] = smoothing
	}
	seen := false
	for _, s := range seqs {
		if len(s) == 0 {
			continue
		}
		for _, x := range s {
			if x < 0 || x >= k {
				return Chain{}, fmt.Errorf("markov: state %d out of range [0,%d)", x, k)
			}
		}
		seen = true
		initCounts[s[0]]++
		for t := 1; t < len(s); t++ {
			counts[s[t-1]][s[t]]++
		}
	}
	if !seen {
		return Chain{}, errors.New("markov: no observations")
	}

	rows := make([][]float64, k)
	for i := range rows {
		rows[i] = make([]float64, k)
		var tot float64
		for j := range counts[i] {
			tot += counts[i][j]
		}
		//privlint:allow floatcompare a sum of integer counts is exactly zero iff all are zero
		if tot == 0 {
			// State never observed as a source: uniform row keeps the
			// matrix stochastic (and irreducible when smoothing > 0).
			for j := range rows[i] {
				rows[i][j] = 1 / float64(k)
			}
			continue
		}
		for j := range counts[i] {
			rows[i][j] = counts[i][j] / tot
		}
	}
	var initTot float64
	for _, v := range initCounts {
		initTot += v
	}
	init := make([]float64, k)
	for i := range init {
		init[i] = initCounts[i] / initTot
	}
	return NewFromRows(init, rows)
}

// EstimateStationary fits the chain as Estimate does and then replaces
// the initial distribution with the fitted chain's stationary
// distribution — the paper's choice for the real-data experiments
// ("qθ is its stationary distribution", Section 5.3).
func EstimateStationary(seqs [][]int, k int, smoothing float64) (Chain, error) {
	c, err := Estimate(seqs, k, smoothing)
	if err != nil {
		return Chain{}, err
	}
	return c.StationaryChain()
}
