package markov

import (
	"encoding/json"
	"testing"

	"pufferfish/internal/floats"
)

func TestChainJSONRoundTrip(t *testing.T) {
	c := theta2()
	blob, err := json.Marshal(c)
	if err != nil {
		t.Fatal(err)
	}
	var back Chain
	if err := json.Unmarshal(blob, &back); err != nil {
		t.Fatal(err)
	}
	if !floats.EqSlices(back.Init, c.Init, 0) {
		t.Errorf("init lost: %v", back.Init)
	}
	for x := 0; x < 2; x++ {
		if !floats.EqSlices(back.P.Row(x), c.P.Row(x), 0) {
			t.Errorf("row %d lost", x)
		}
	}
}

func TestChainJSONRejectsInvalid(t *testing.T) {
	cases := []string{
		`{"init":[0.5,0.6],"transition":[[0.9,0.1],[0.4,0.6]]}`, // bad init
		`{"init":[0.5,0.5],"transition":[[0.9,0.2],[0.4,0.6]]}`, // bad row
		`{"init":[0.5,0.5],"transition":[[1.0],[0.4,0.6]]}`,     // ragged
		`{"init":[1.0],"transition":[]}`,                        // empty
		`not json`,
	}
	for i, in := range cases {
		var c Chain
		if err := json.Unmarshal([]byte(in), &c); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
}
