package markov

import (
	"errors"
	"fmt"
	"math"

	"pufferfish/internal/floats"
	"pufferfish/internal/matrix"
)

// Class is a distribution class Θ of Markov chains over a common
// state space and chain length — the third component of a Pufferfish
// instantiation (S, Q, Θ) in the Section 4.4 setting.
//
// Exact mechanisms iterate Chains(); the approximate mechanism only
// needs the two scalars π^min_Θ (eq 6) and g_Θ (eq 14).
type Class interface {
	// K is the number of states.
	K() int
	// T is the chain length (number of nodes X_1 … X_T).
	T() int
	// Chains enumerates representative chains. For classes over a
	// continuum of parameters this is a documented finite grid.
	Chains() []Chain
	// PiMin returns π^min_Θ = min_{x,θ} π_θ(x).
	PiMin() (float64, error)
	// Gap returns g_Θ per the overloaded eq 14 (the reversible
	// definition when every chain in the class is reversible).
	Gap() (float64, error)
	// Reversible reports whether every chain in the class is
	// reversible, enabling the tighter Lemma C.1 bounds.
	Reversible() (bool, error)
	// AllInitialDistributions reports whether Θ pairs every
	// transition matrix with the full probability simplex of initial
	// distributions, enabling the Appendix C.4 closed-form
	// optimization in MQMExact.
	AllInitialDistributions() bool
}

// Singleton is the class Θ = {θ}, the setting of the paper's
// real-data experiments (Section 5.3).
type Singleton struct {
	Chain Chain
	Len   int
}

// NewSingleton validates and wraps a single chain of length T.
func NewSingleton(c Chain, T int) (*Singleton, error) {
	if err := c.Validate(); err != nil {
		return nil, err
	}
	if T < 1 {
		return nil, fmt.Errorf("markov: chain length %d < 1", T)
	}
	return &Singleton{Chain: c, Len: T}, nil
}

// K implements Class.
func (s *Singleton) K() int { return s.Chain.K() }

// T implements Class.
func (s *Singleton) T() int { return s.Len }

// Chains implements Class.
func (s *Singleton) Chains() []Chain { return []Chain{s.Chain} }

// PiMin implements Class.
func (s *Singleton) PiMin() (float64, error) { return s.Chain.PiMin() }

// Gap implements Class.
func (s *Singleton) Gap() (float64, error) { return s.Chain.Eigengap() }

// Reversible implements Class.
func (s *Singleton) Reversible() (bool, error) { return s.Chain.Reversible(1e-9) }

// AllInitialDistributions implements Class.
func (s *Singleton) AllInitialDistributions() bool { return false }

// Finite is an explicit finite class Θ = {θ_1, …, θ_m}, as in the
// paper's Section 2.2 and Section 4.4 running examples.
type Finite struct {
	Cs      []Chain
	Len     int
	AllQ    bool // class contains all initial distributions per matrix
	revMemo *bool
}

// NewFinite validates and wraps an explicit set of chains.
func NewFinite(cs []Chain, T int) (*Finite, error) {
	if len(cs) == 0 {
		return nil, errors.New("markov: empty class")
	}
	k := cs[0].K()
	for i, c := range cs {
		if err := c.Validate(); err != nil {
			return nil, fmt.Errorf("markov: chain %d: %w", i, err)
		}
		if c.K() != k {
			return nil, fmt.Errorf("markov: chain %d has %d states, want %d", i, c.K(), k)
		}
	}
	if T < 1 {
		return nil, fmt.Errorf("markov: chain length %d < 1", T)
	}
	return &Finite{Cs: cs, Len: T}, nil
}

// K implements Class.
func (f *Finite) K() int { return f.Cs[0].K() }

// T implements Class.
func (f *Finite) T() int { return f.Len }

// Chains implements Class.
func (f *Finite) Chains() []Chain { return f.Cs }

// PiMin implements Class.
func (f *Finite) PiMin() (float64, error) {
	best := math.Inf(1)
	for _, c := range f.Cs {
		v, err := c.PiMin()
		if err != nil {
			return 0, err
		}
		if v < best {
			best = v
		}
	}
	return best, nil
}

// Reversible implements Class.
func (f *Finite) Reversible() (bool, error) {
	if f.revMemo != nil {
		return *f.revMemo, nil
	}
	all := true
	for _, c := range f.Cs {
		ok, err := c.Reversible(1e-9)
		if err != nil {
			return false, err
		}
		if !ok {
			all = false
			break
		}
	}
	f.revMemo = &all
	return all, nil
}

// Gap implements Class: the minimum per-chain gap, using the
// reversible definition when the whole class is reversible (eq 14).
func (f *Finite) Gap() (float64, error) {
	rev, err := f.Reversible()
	if err != nil {
		return 0, err
	}
	best := math.Inf(1)
	for _, c := range f.Cs {
		var g float64
		if rev {
			g, err = c.EigengapReversible()
		} else {
			g, err = c.EigengapMultiplicative()
		}
		if err != nil {
			return 0, err
		}
		if g < best {
			best = g
		}
	}
	return best, nil
}

// AllInitialDistributions implements Class.
func (f *Finite) AllInitialDistributions() bool { return f.AllQ }

// BinaryInterval is the synthetic-experiment class of Section 5.2:
// binary chains of length T whose transition matrix is parameterized
// by p0 = P(X_{t+1}=0 | X_t=0) and p1 = P(X_{t+1}=1 | X_t=1) with
// p0, p1 ∈ [Alpha, Beta], paired with every initial distribution on
// the 2-simplex.
//
// Closed forms (verified against grid search in the tests):
//
//	π^min_Θ = (1−Beta) / (2−Alpha−Beta)
//	g_Θ     = 2·(1 − max(|2Alpha−1|, |2Beta−1|))   (reversible, eq 14)
//
// Two-state chains are always reversible, so the Lemma C.1 bounds
// apply throughout.
type BinaryInterval struct {
	Alpha, Beta float64
	Len         int
	// GridN is the number of grid points per transition parameter
	// used by Chains(); exact mechanisms take the worst case over
	// this grid. Zero means a default of 16.
	GridN int
}

// NewBinaryInterval validates parameters. Interior intervals
// (0 < Alpha ≤ Beta < 1) keep every chain irreducible and aperiodic.
func NewBinaryInterval(alpha, beta float64, T int) (*BinaryInterval, error) {
	if !(alpha > 0 && beta < 1 && alpha <= beta) {
		return nil, fmt.Errorf("markov: invalid interval [%v, %v]", alpha, beta)
	}
	if T < 1 {
		return nil, fmt.Errorf("markov: chain length %d < 1", T)
	}
	return &BinaryInterval{Alpha: alpha, Beta: beta, Len: T}, nil
}

// BinaryChain returns the two-state chain with stay-probabilities
// (p0, p1) and the given initial probability of state 0.
func BinaryChain(q0, p0, p1 float64) Chain {
	return MustNew(
		[]float64{q0, 1 - q0},
		matrix.FromRows([][]float64{{p0, 1 - p0}, {1 - p1, p1}}),
	)
}

// K implements Class.
func (b *BinaryInterval) K() int { return 2 }

// T implements Class.
func (b *BinaryInterval) T() int { return b.Len }

// Chains implements Class: a GridN×GridN grid over (p0, p1) in
// [Alpha, Beta]², each started from its stationary distribution (the
// initial distribution itself is optimized in closed form via
// Appendix C.4, see AllInitialDistributions).
func (b *BinaryInterval) Chains() []Chain {
	n := b.GridN
	if n <= 0 {
		n = 16
	}
	var ps []float64
	//privlint:allow floatcompare Alpha and Beta are user-set config constants, not computed values
	if b.Alpha == b.Beta || n == 1 {
		ps = []float64{b.Alpha}
	} else {
		ps = floats.Linspace(b.Alpha, b.Beta, n)
	}
	out := make([]Chain, 0, len(ps)*len(ps))
	for _, p0 := range ps {
		for _, p1 := range ps {
			c := BinaryChain(0.5, p0, p1)
			if sc, err := c.StationaryChain(); err == nil {
				c = sc
			}
			out = append(out, c)
		}
	}
	return out
}

// PiMin implements Class via the closed form (1−Beta)/(2−Alpha−Beta):
// π = ((1−p1)/(2−p0−p1), (1−p0)/(2−p0−p1)) and each coordinate is
// monotone in (p0, p1), so the minimum sits at a corner of the box.
func (b *BinaryInterval) PiMin() (float64, error) {
	return (1 - b.Beta) / (2 - b.Alpha - b.Beta), nil
}

// Gap implements Class: the second eigenvalue of the two-state chain
// is λ₂ = p0+p1−1, so with the reversible definition of eq 14,
// g_Θ = 2·(1 − max |λ₂|) over the box.
func (b *BinaryInterval) Gap() (float64, error) {
	maxAbs := math.Max(math.Abs(2*b.Alpha-1), math.Abs(2*b.Beta-1))
	return 2 * (1 - maxAbs), nil
}

// Reversible implements Class: every two-state chain is reversible.
func (b *BinaryInterval) Reversible() (bool, error) { return true, nil }

// AllInitialDistributions implements Class.
func (b *BinaryInterval) AllInitialDistributions() bool { return true }
