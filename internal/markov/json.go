package markov

import (
	"encoding/json"
	"fmt"

	"pufferfish/internal/matrix"
)

// chainJSON is the wire form of a Chain: the initial distribution and
// the transition matrix as rows.
type chainJSON struct {
	Init []float64   `json:"init"`
	P    [][]float64 `json:"transition"`
}

// MarshalJSON implements json.Marshaler, so fitted models can be
// persisted alongside releases.
func (c Chain) MarshalJSON() ([]byte, error) {
	k := c.K()
	rows := make([][]float64, k)
	for i := 0; i < k; i++ {
		rows[i] = c.P.Row(i)
	}
	return json.Marshal(chainJSON{Init: c.Init, P: rows})
}

// UnmarshalJSON implements json.Unmarshaler, validating the decoded
// chain.
func (c *Chain) UnmarshalJSON(data []byte) error {
	var w chainJSON
	if err := json.Unmarshal(data, &w); err != nil {
		return err
	}
	if len(w.P) == 0 {
		return fmt.Errorf("markov: empty transition matrix")
	}
	for i, row := range w.P {
		if len(row) != len(w.P) {
			return fmt.Errorf("markov: transition row %d has %d entries, want %d", i, len(row), len(w.P))
		}
	}
	nc, err := New(w.Init, matrix.FromRows(w.P))
	if err != nil {
		return err
	}
	*c = nc
	return nil
}
