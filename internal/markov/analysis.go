package markov

import (
	"errors"
	"fmt"
	"math"

	"pufferfish/internal/eigen"
	"pufferfish/internal/matrix"
)

// ErrReducible is returned by analyses that require an irreducible
// chain (Lemma 4.8 hypotheses).
var ErrReducible = errors.New("markov: chain is not irreducible")

// Irreducible reports whether the support graph of P is strongly
// connected (single communicating class). The forward and transposed
// BFS passes share one seen/queue buffer pair.
func (c Chain) Irreducible() bool {
	k := c.K()
	seen := make([]bool, k)
	queue := make([]int, 0, k)
	if !reachesAll(c.P, k, false, seen, queue) {
		return false
	}
	for i := range seen {
		seen[i] = false
	}
	return reachesAll(c.P, k, true, seen, queue)
}

// reachesAll runs a BFS from state 0 over the support graph (or its
// transpose) and reports whether every state is reached. Strong
// connectivity ⇔ both directions reach all states from any one state.
// The queue is consumed by an index cursor (no slice re-slicing), so
// the traversal is O(k²) with zero allocations beyond the caller's
// buffers.
func reachesAll(p *matrix.Dense, k int, transpose bool, seen []bool, queue []int) bool {
	queue = append(queue[:0], 0)
	seen[0] = true
	count := 1
	for head := 0; head < len(queue); head++ {
		u := queue[head]
		for v := 0; v < k; v++ {
			var edge float64
			if transpose {
				edge = p.At(v, u)
			} else {
				edge = p.At(u, v)
			}
			if edge > 0 && !seen[v] {
				seen[v] = true
				count++
				queue = append(queue, v)
			}
		}
	}
	return count == k
}

// Period returns the period of an irreducible chain: the gcd of all
// cycle lengths through state 0, computed from BFS levels (for edge
// u→v in the support graph, gcd accumulates level(u)+1−level(v)). The
// BFS queue is consumed by an index cursor, like reachesAll's.
func (c Chain) Period() (int, error) {
	if !c.Irreducible() {
		return 0, ErrReducible
	}
	k := c.K()
	level := make([]int, k)
	for i := range level {
		level[i] = -1
	}
	level[0] = 0
	queue := make([]int, 1, k)
	g := 0
	for head := 0; head < len(queue); head++ {
		u := queue[head]
		for v := 0; v < k; v++ {
			if c.P.At(u, v) <= 0 {
				continue
			}
			if level[v] == -1 {
				level[v] = level[u] + 1
				queue = append(queue, v)
			} else {
				g = gcd(g, abs(level[u]+1-level[v]))
			}
		}
	}
	if g == 0 {
		// A single cycle with no chords: its length is the period.
		// This happens for permutation matrices; recover the cycle
		// length through state 0.
		g = cycleLenThrough0(c.P, k)
	}
	return g, nil
}

func cycleLenThrough0(p *matrix.Dense, k int) int {
	cur, steps := 0, 0
	for {
		next := -1
		for v := 0; v < k; v++ {
			if p.At(cur, v) > 0 {
				next = v
				break
			}
		}
		cur = next
		steps++
		if cur == 0 || steps > k+1 {
			return steps
		}
	}
}

// Aperiodic reports whether an irreducible chain has period one.
func (c Chain) Aperiodic() (bool, error) {
	p, err := c.Period()
	if err != nil {
		return false, err
	}
	return p == 1, nil
}

func gcd(a, b int) int {
	for b != 0 {
		a, b = b, a%b
	}
	return a
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}

// Stationary returns the stationary distribution π with πP = π,
// computed by a direct linear solve (replace one balance equation with
// the normalization Σπ = 1). Requires irreducibility for uniqueness.
func (c Chain) Stationary() ([]float64, error) {
	if !c.Irreducible() {
		return nil, ErrReducible
	}
	k := c.K()
	// Build A = Pᵀ − I with the last row replaced by ones; solve
	// A·π = e_k.
	a := c.P.T()
	for i := 0; i < k; i++ {
		a.Set(i, i, a.At(i, i)-1)
	}
	for j := 0; j < k; j++ {
		a.Set(k-1, j, 1)
	}
	b := make([]float64, k)
	b[k-1] = 1
	pi, err := matrix.Solve(a, b)
	if err != nil {
		return nil, fmt.Errorf("markov: stationary solve failed: %w", err)
	}
	// Clean tiny negatives from roundoff.
	var sum float64
	for i := range pi {
		if pi[i] < 0 && pi[i] > -1e-12 {
			pi[i] = 0
		}
		if pi[i] < 0 {
			return nil, fmt.Errorf("markov: stationary solve produced negative mass %v", pi[i])
		}
		sum += pi[i]
	}
	for i := range pi {
		pi[i] /= sum
	}
	return pi, nil
}

// StationaryChain returns a copy of the chain started from its
// stationary distribution, the setting in which MQMExact's score is
// independent of the node index (Section 4.4.1).
func (c Chain) StationaryChain() (Chain, error) {
	pi, err := c.Stationary()
	if err != nil {
		return Chain{}, err
	}
	return c.WithInit(pi)
}

// TimeReversal returns the transition matrix P* of the time-reversal
// chain (Definition 4.7): P*(x,y)·π(x) = P(y,x)·π(y).
func (c Chain) TimeReversal() (*matrix.Dense, error) {
	pi, err := c.Stationary()
	if err != nil {
		return nil, err
	}
	k := c.K()
	rev := matrix.NewDense(k, k)
	for x := 0; x < k; x++ {
		//privlint:allow floatcompare exact-zero stationary mass makes the reversal undefined
		if pi[x] == 0 {
			return nil, fmt.Errorf("markov: state %d has zero stationary mass; time reversal undefined", x)
		}
		for y := 0; y < k; y++ {
			rev.Set(x, y, c.P.At(y, x)*pi[y]/pi[x])
		}
	}
	return rev, nil
}

// Reversible reports whether the chain satisfies detailed balance
// π(x)P(x,y) = π(y)P(y,x) within tol.
func (c Chain) Reversible(tol float64) (bool, error) {
	pi, err := c.Stationary()
	if err != nil {
		return false, err
	}
	k := c.K()
	for x := 0; x < k; x++ {
		for y := x + 1; y < k; y++ {
			if math.Abs(pi[x]*c.P.At(x, y)-pi[y]*c.P.At(y, x)) > tol {
				return false, nil
			}
		}
	}
	return true, nil
}

// PiMin returns min_x π(x), the chain's contribution to π^min_Θ
// (eq 6).
func (c Chain) PiMin() (float64, error) {
	pi, err := c.Stationary()
	if err != nil {
		return 0, err
	}
	m := pi[0]
	for _, v := range pi[1:] {
		if v < m {
			m = v
		}
	}
	return m, nil
}

// EigengapMultiplicative returns g = min{1 − |λ| : PP*x = λx, |λ|<1},
// the eigengap of the multiplicative reversibilization P·P* used in
// eq 7 and Lemma C.2's non-reversible branch.
func (c Chain) EigengapMultiplicative() (float64, error) {
	rev, err := c.TimeReversal()
	if err != nil {
		return 0, err
	}
	pi, err := c.Stationary()
	if err != nil {
		return 0, err
	}
	return eigengapOf(c.P.Mul(rev), pi)
}

// EigengapReversible returns g = 2·min{1 − |λ| : Px = λx, |λ|<1} for a
// reversible chain — the overloaded definition in eq 14 that yields
// the tighter Lemma C.1 bounds. It returns an error if the chain is
// not reversible.
func (c Chain) EigengapReversible() (float64, error) {
	ok, err := c.Reversible(1e-9)
	if err != nil {
		return 0, err
	}
	if !ok {
		return 0, errors.New("markov: chain is not reversible")
	}
	pi, err := c.Stationary()
	if err != nil {
		return 0, err
	}
	g, err := eigengapOf(c.P, pi)
	if err != nil {
		return 0, err
	}
	return 2 * g, nil
}

// Eigengap returns the gap per the overloaded eq 14: the reversible
// definition when the chain is reversible, otherwise the
// multiplicative-reversibilization definition.
func (c Chain) Eigengap() (float64, error) {
	ok, err := c.Reversible(1e-9)
	if err != nil {
		return 0, err
	}
	if ok {
		return c.EigengapReversible()
	}
	return c.EigengapMultiplicative()
}

// eigengapOf computes min{1−|λ| : Mx = λx, |λ| < 1} for a kernel M
// that is reversible with respect to pi, by the similarity transform
// S = D^{1/2}·M·D^{−1/2} (D = diag π), which is symmetric with the
// same spectrum, then cyclic Jacobi.
func eigengapOf(m *matrix.Dense, pi []float64) (float64, error) {
	k, _ := m.Dims()
	s := matrix.NewDense(k, k)
	for x := 0; x < k; x++ {
		for y := 0; y < k; y++ {
			if pi[x] <= 0 || pi[y] <= 0 {
				return 0, fmt.Errorf("markov: zero stationary mass prevents symmetrization")
			}
			s.Set(x, y, math.Sqrt(pi[x]/pi[y])*m.At(x, y))
		}
	}
	// Roundoff can leave S slightly asymmetric; symmetrize explicitly.
	for x := 0; x < k; x++ {
		for y := x + 1; y < k; y++ {
			avg := (s.At(x, y) + s.At(y, x)) / 2
			s.Set(x, y, avg)
			s.Set(y, x, avg)
		}
	}
	lambda, ok, err := eigen.SecondLargestAbs(s, 1e-9)
	if err != nil {
		return 0, err
	}
	if !ok {
		return 0, errors.New("markov: no spectral gap (all eigenvalues on the unit circle)")
	}
	return 1 - lambda, nil
}
