package markov

import (
	"math"
	"math/rand/v2"
	"testing"
	"testing/quick"

	"pufferfish/internal/floats"
)

func TestCountDistTwoSteps(t *testing.T) {
	// T=2 binary chain: N = X1 + X2 (w = identity on {0,1}).
	c := theta1() // init [1,0], P = [[.9,.1],[.4,.6]]
	d, err := c.CountDist(2, []int{0, 1})
	if err != nil {
		t.Fatal(err)
	}
	// X1=0 surely. N=0: X2=0 → 0.9; N=1: X2=1 → 0.1.
	if !floats.Eq(d.Prob(0), 0.9, 1e-12) || !floats.Eq(d.Prob(1), 0.1, 1e-12) {
		t.Errorf("dist = %v / %v", d.Support(), d.Masses())
	}
}

func TestCountDistMatchesMonteCarlo(t *testing.T) {
	c := theta2()
	T := 6
	d, err := c.CountDist(T, []int{0, 1})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewPCG(71, 72))
	n := 200000
	counts := map[int]int{}
	for i := 0; i < n; i++ {
		seq := c.Sample(T, rng)
		s := 0
		for _, x := range seq {
			s += x
		}
		counts[s]++
	}
	for s := 0; s <= T; s++ {
		emp := float64(counts[s]) / float64(n)
		if math.Abs(emp-d.Prob(float64(s))) > 0.01 {
			t.Errorf("P(N=%d): empirical %v vs exact %v", s, emp, d.Prob(float64(s)))
		}
	}
}

func TestCountDistGivenBayesConsistency(t *testing.T) {
	// P(N=n) = Σ_a P(N=n | X_i=a)·P(X_i=a).
	c := theta2()
	T, i := 7, 4
	w := []int{0, 1}
	uncond, err := c.CountDist(T, w)
	if err != nil {
		t.Fatal(err)
	}
	marg := c.Marginals(T)[i-1]
	for n := 0; n <= T; n++ {
		var mix float64
		for a := 0; a < 2; a++ {
			d, err := c.CountDistGiven(T, w, i, a)
			if err != nil {
				t.Fatal(err)
			}
			mix += d.Prob(float64(n)) * marg[a]
		}
		if !floats.Eq(mix, uncond.Prob(float64(n)), 1e-10) {
			t.Errorf("N=%d: mixture %v vs marginal %v", n, mix, uncond.Prob(float64(n)))
		}
	}
}

func TestCountDistGivenZeroProbEvent(t *testing.T) {
	c := theta1() // starts at state 0 surely
	if _, err := c.CountDistGiven(3, []int{0, 1}, 1, 1); err == nil {
		t.Error("conditioning on zero-probability event should error")
	}
}

func TestCountDistGivenValidation(t *testing.T) {
	c := theta1()
	if _, err := c.CountDistGiven(3, []int{0}, 0, 0); err == nil {
		t.Error("short weight vector accepted")
	}
	if _, err := c.CountDistGiven(0, []int{0, 1}, 0, 0); err == nil {
		t.Error("T=0 accepted")
	}
	if _, err := c.CountDistGiven(3, []int{0, 1}, 9, 0); err == nil {
		t.Error("out-of-range conditioning index accepted")
	}
	if _, err := c.CountDistGiven(3, []int{0, 1}, 1, 5); err == nil {
		t.Error("out-of-range conditioning state accepted")
	}
}

func TestCountDistNegativeWeights(t *testing.T) {
	// Weights may be negative: N = Σ ±1.
	c := theta2()
	d, err := c.CountDist(4, []int{-1, 1})
	if err != nil {
		t.Fatal(err)
	}
	// Support must lie in {-4, -2, 0, 2, 4}.
	for _, x := range d.Support() {
		if int(x)%2 != 0 || x < -4 || x > 4 {
			t.Errorf("unexpected support point %v", x)
		}
	}
	if !floats.Eq(floats.Sum(d.Masses()), 1, 1e-9) {
		t.Error("masses do not sum to one")
	}
}

// Property: the conditional count distribution has mean equal to the
// Monte-Carlo conditional mean on random chains.
func TestCountDistGivenProperty(t *testing.T) {
	f := func(seed uint64) bool {
		r := rand.New(rand.NewPCG(seed, 73))
		c := randomIrreducibleChain(r, 2)
		T := 3 + r.IntN(5)
		i := 1 + r.IntN(T)
		a := r.IntN(2)
		if c.Marginals(T)[i-1][a] < 0.05 {
			return true // too rare for a quick Monte-Carlo check
		}
		d, err := c.CountDistGiven(T, []int{0, 1}, i, a)
		if err != nil {
			return false
		}
		rng := rand.New(rand.NewPCG(seed, 99))
		var sum, n float64
		for trial := 0; trial < 60000; trial++ {
			seq := c.Sample(T, rng)
			if seq[i-1] != a {
				continue
			}
			s := 0
			for _, x := range seq {
				s += x
			}
			sum += float64(s)
			n++
		}
		if n < 500 {
			return true
		}
		return math.Abs(sum/n-d.Mean()) < 0.08
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Error(err)
	}
}

func TestNodeMarginalGiven(t *testing.T) {
	c := theta1()
	T := 5
	// Forward: P(X3 = · | X2 = 1) should be row 1 of P.
	fwd, err := c.NodeMarginalGiven(T, 3, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !floats.EqSlices(fwd, []float64{0.4, 0.6}, 1e-12) {
		t.Errorf("forward = %v", fwd)
	}
	// Same node: point mass.
	same, err := c.NodeMarginalGiven(T, 2, 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !floats.EqSlices(same, []float64{1, 0}, 0) {
		t.Errorf("same node = %v", same)
	}
	// Backward via Bayes: P(X1 = y | X2 = 0) — compare with the
	// Section 4.3 worked values for q=[0.8,0.2]: 0.9 and 0.1.
	c2 := MustNew([]float64{0.8, 0.2}, c.P)
	back, err := c2.NodeMarginalGiven(3, 1, 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !floats.EqSlices(back, []float64{0.9, 0.1}, 1e-12) {
		t.Errorf("backward = %v, want [0.9 0.1]", back)
	}
	// Zero-probability conditioning.
	if _, err := c.NodeMarginalGiven(T, 1, 1, 1); err == nil {
		t.Error("zero-probability conditioning accepted")
	}
}

func TestBinaryIntervalClosedForms(t *testing.T) {
	b, err := NewBinaryInterval(0.2, 0.8, 50)
	if err != nil {
		t.Fatal(err)
	}
	// Grid cross-check of the closed forms.
	gridPiMin := math.Inf(1)
	gridGap := math.Inf(1)
	for _, p0 := range floats.Linspace(0.2, 0.8, 25) {
		for _, p1 := range floats.Linspace(0.2, 0.8, 25) {
			c := BinaryChain(0.5, p0, p1)
			pm, err := c.PiMin()
			if err != nil {
				t.Fatal(err)
			}
			if pm < gridPiMin {
				gridPiMin = pm
			}
			g, err := c.EigengapReversible()
			if err != nil {
				t.Fatal(err)
			}
			if g < gridGap {
				gridGap = g
			}
		}
	}
	pm, _ := b.PiMin()
	if !floats.Eq(pm, gridPiMin, 1e-9) {
		t.Errorf("PiMin closed form %v vs grid %v", pm, gridPiMin)
	}
	gap, _ := b.Gap()
	if !floats.Eq(gap, gridGap, 1e-9) {
		t.Errorf("Gap closed form %v vs grid %v", gap, gridGap)
	}
	if rev, _ := b.Reversible(); !rev {
		t.Error("binary class must be reversible")
	}
	if !b.AllInitialDistributions() {
		t.Error("binary class should carry all initial distributions")
	}
	if got := len(b.Chains()); got != 16*16 {
		t.Errorf("default grid size = %d", got)
	}
}

func TestBinaryIntervalSymmetricAlpha(t *testing.T) {
	// For Θ = [α, 1−α]: π^min = α and g = 4α (used in EXPERIMENTS.md).
	alpha := 0.3
	b, err := NewBinaryInterval(alpha, 1-alpha, 100)
	if err != nil {
		t.Fatal(err)
	}
	pm, _ := b.PiMin()
	if !floats.Eq(pm, alpha, 1e-12) {
		t.Errorf("PiMin = %v, want α = %v", pm, alpha)
	}
	g, _ := b.Gap()
	if !floats.Eq(g, 4*alpha, 1e-12) {
		t.Errorf("Gap = %v, want 4α = %v", g, 4*alpha)
	}
}

func TestNewBinaryIntervalValidation(t *testing.T) {
	if _, err := NewBinaryInterval(0, 0.5, 10); err == nil {
		t.Error("α=0 accepted")
	}
	if _, err := NewBinaryInterval(0.5, 1, 10); err == nil {
		t.Error("β=1 accepted")
	}
	if _, err := NewBinaryInterval(0.6, 0.4, 10); err == nil {
		t.Error("α>β accepted")
	}
	if _, err := NewBinaryInterval(0.2, 0.4, 0); err == nil {
		t.Error("T=0 accepted")
	}
}

func TestFiniteClass(t *testing.T) {
	f, err := NewFinite([]Chain{theta1(), theta2()}, 100)
	if err != nil {
		t.Fatal(err)
	}
	pm, err := f.PiMin()
	if err != nil {
		t.Fatal(err)
	}
	if !floats.Eq(pm, 0.2, 1e-9) {
		t.Errorf("class PiMin = %v, want 0.2", pm)
	}
	// Both chains reversible; reversible gaps are 2(1−0.5)=1 and
	// 2(1−0.5)=1, so class gap = 1 under eq 14's reversible branch.
	g, err := f.Gap()
	if err != nil {
		t.Fatal(err)
	}
	if !floats.Eq(g, 1.0, 1e-9) {
		t.Errorf("class Gap = %v, want 1", g)
	}
	if _, err := NewFinite(nil, 10); err == nil {
		t.Error("empty class accepted")
	}
}
