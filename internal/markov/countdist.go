package markov

import (
	"fmt"

	"pufferfish/internal/dist"
	"pufferfish/internal/floats"
)

// CountDist returns the exact distribution of the additive functional
// N = Σ_{t=1..T} w[X_t] with integer per-state weights w, computed by
// forward dynamic programming over (state, partial sum) in
// O(T·k²·range) time.
//
// This is the distribution oracle the Wasserstein Mechanism needs for
// chain instantiations: with w the indicator of a state, N is that
// state's occupancy count, so F = N/T is the released relative
// frequency.
func (c Chain) CountDist(T int, w []int) (dist.Discrete, error) {
	return c.CountDistGiven(T, w, 0, 0)
}

// CountDistGiven returns the distribution of N = Σ_t w[X_t]
// conditioned on X_cond = condState, where cond is a 1-based node
// index; cond == 0 means no conditioning. It returns an error when
// the conditioning event has probability zero.
func (c Chain) CountDistGiven(T int, w []int, cond, condState int) (dist.Discrete, error) {
	k := c.K()
	if T < 1 {
		return dist.Discrete{}, fmt.Errorf("markov: chain length %d < 1", T)
	}
	if len(w) != k {
		return dist.Discrete{}, fmt.Errorf("markov: weight vector has length %d, want %d", len(w), k)
	}
	if cond < 0 || cond > T {
		return dist.Discrete{}, fmt.Errorf("markov: conditioning index %d outside [0,%d]", cond, T)
	}
	if cond > 0 && (condState < 0 || condState >= k) {
		return dist.Discrete{}, fmt.Errorf("markov: conditioning state %d outside [0,%d)", condState, k)
	}
	wMin, wMax := w[0], w[0]
	for _, v := range w[1:] {
		if v < wMin {
			wMin = v
		}
		if v > wMax {
			wMax = v
		}
	}
	offset := -T * wMin
	size := T*(wMax-wMin) + 1

	// cur[x*size+n] = P(X_1..X_t consistent with conditioning so far,
	// X_t = x, Σ_{s≤t} w[X_s] = n−offset). The two k×size tables are
	// pooled slabs swapped each step, so the whole dynamic program
	// allocates nothing once the pool is warm — this is the dominant
	// allocation site of the Wasserstein chain instantiation
	// (previously 2·T·k fresh rows per conditional distribution).
	cur := floats.GetBuffer(k * size)
	next := floats.GetBuffer(k * size)
	floats.ZeroBuffer(cur)
	for x := 0; x < k; x++ {
		if cond == 1 && x != condState {
			continue
		}
		cur[x*size+w[x]+offset] += c.Init[x]
	}
	// Note: index for partial sum n is n+offset.
	for t := 2; t <= T; t++ {
		floats.ZeroBuffer(next)
		for x := 0; x < k; x++ {
			row := c.P.RawRow(x)
			for n, mass := range cur[x*size : (x+1)*size] {
				//privlint:allow floatcompare structural-zero sparsity skip
				if mass == 0 {
					continue
				}
				for y := 0; y < k; y++ {
					//privlint:allow floatcompare structural-zero sparsity skip
					if row[y] == 0 {
						continue
					}
					if cond == t && y != condState {
						continue
					}
					next[y*size+n+w[y]] += mass * row[y]
				}
			}
		}
		cur, next = next, cur
	}

	// Collapse over the final state.
	mass := floats.GetBuffer(size)
	floats.ZeroBuffer(mass)
	for x := 0; x < k; x++ {
		for n, p := range cur[x*size : (x+1)*size] {
			mass[n] += p
		}
	}
	floats.PutBuffer(cur)
	floats.PutBuffer(next)
	total := floats.Sum(mass)
	if total <= 1e-300 {
		floats.PutBuffer(mass)
		return dist.Discrete{}, fmt.Errorf("markov: conditioning event X_%d=%d has probability zero", cond, condState)
	}
	atoms := 0
	for _, p := range mass {
		if p > 0 {
			atoms++
		}
	}
	// One backing array for both retained slices.
	buf := make([]float64, 2*atoms)
	xs, ps := buf[:atoms:atoms], buf[atoms:]
	i := 0
	for n, p := range mass {
		if p <= 0 {
			continue
		}
		xs[i] = float64(n - offset)
		ps[i] = p / total
		i++
	}
	floats.PutBuffer(mass)
	// The support is built in increasing order, so the sort-free
	// constructor applies; it renormalizes exactly like dist.New.
	return dist.FromSorted(xs, ps)
}

// NodeMarginalGiven returns P(X_j = · | X_i = a) for 1-based node
// indices, computed exactly from the chain (forwards via the power
// cache for j > i, backwards via Bayes for j < i). Used by the tests
// to validate max-influence formulas.
func (c Chain) NodeMarginalGiven(T, j, i, a int) ([]float64, error) {
	if j < 1 || j > T || i < 1 || i > T {
		return nil, fmt.Errorf("markov: node index out of range")
	}
	k := c.K()
	pc := NewPowerCache(c.P)
	marg := c.Marginals(T)
	if marg[i-1][a] <= 0 {
		return nil, fmt.Errorf("markov: conditioning event X_%d=%d has probability zero", i, a)
	}
	out := make([]float64, k)
	switch {
	case j == i:
		out[a] = 1
	case j > i:
		p := pc.Pow(j - i)
		copy(out, p.RawRow(a))
	default: // j < i: P(X_j=y | X_i=a) ∝ P(X_j=y)·P^{i−j}(y,a)
		p := pc.Pow(i - j)
		var tot float64
		for y := 0; y < k; y++ {
			out[y] = marg[j-1][y] * p.At(y, a)
			tot += out[y]
		}
		for y := range out {
			out[y] /= tot
		}
	}
	return out, nil
}
