package kantorovich

import (
	"testing"

	"pufferfish/internal/bayes"
	"pufferfish/internal/core"
	"pufferfish/internal/markov"
)

// householdTree is a 5-person household infection tree: one index case
// whose state drives two contacts, one of whom drives two more.
func householdTree(t *testing.T) *bayes.Network {
	t.Helper()
	spread := []float64{0.9, 0.1, 0.35, 0.65} // P(child | parent)
	nw, err := bayes.New([]bayes.Node{
		{Name: "P1", Card: 2, CPT: []float64{0.8, 0.2}},
		{Name: "P2", Card: 2, Parents: []int{0}, CPT: spread},
		{Name: "P3", Card: 2, Parents: []int{0}, CPT: spread},
		{Name: "P4", Card: 2, Parents: []int{1}, CPT: spread},
		{Name: "P5", Card: 2, Parents: []int{1}, CPT: spread},
	})
	if err != nil {
		t.Fatal(err)
	}
	return nw
}

// TestScoreSubstrateNetwork: a tree-network release scores end to end,
// the profiles land in the shared cache under the network fingerprint
// (k misses cold, k hits warm, identical score), and σ follows the
// k·W∞/ε calibration.
func TestScoreSubstrateNetwork(t *testing.T) {
	sub, err := core.NewNetworkSubstrate([]*bayes.Network{householdTree(t)})
	if err != nil {
		t.Fatal(err)
	}
	cache := core.NewScoreCache()
	const eps = 0.8
	cold, err := ScoreSubstrate(cache, sub, eps, Options{Parallelism: 1})
	if err != nil {
		t.Fatal(err)
	}
	if st := cache.Stats(); st.Hits != 0 || st.Misses != int64(sub.K()) {
		t.Errorf("cold stats = %+v, want 0 hits / %d misses", st, sub.K())
	}
	warm, err := ScoreSubstrate(cache, sub, eps, Options{Parallelism: 0})
	if err != nil {
		t.Fatal(err)
	}
	if st := cache.Stats(); st.Hits != int64(sub.K()) {
		t.Errorf("warm stats = %+v, want %d hits", st, sub.K())
	}
	if cold != warm {
		t.Errorf("warm score %+v != cold %+v", warm, cold)
	}
	if !(cold.Sigma > 0) {
		t.Errorf("σ = %v, want > 0", cold.Sigma)
	}
	p, err := CellProfileSubstrate(cache, sub, cold.Node, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if want := float64(sub.K()) * p.WInf / eps; cold.Sigma != want {
		t.Errorf("σ = %v, want k·W∞/ε = %v", cold.Sigma, want)
	}
	if cold.Influence != p.W1 {
		t.Errorf("Influence = %v, want worst cell's W₁ %v", cold.Influence, p.W1)
	}
}

// TestSubstrateCacheIsolation: the same chain scored as a chain class
// and as its FromChain network must never serve each other's cache
// entries — the kind tag separates the fingerprints even though the
// scores agree.
func TestSubstrateCacheIsolation(t *testing.T) {
	const T = 8
	chain := markov.BinaryChain(0.3, 0.8, 0.6)
	class, err := markov.NewSingleton(chain, T)
	if err != nil {
		t.Fatal(err)
	}
	nw, err := bayes.FromChain(chain, T)
	if err != nil {
		t.Fatal(err)
	}
	sub, err := core.NewNetworkSubstrate([]*bayes.Network{nw})
	if err != nil {
		t.Fatal(err)
	}
	cache := core.NewScoreCache()
	sChain, err := Score(cache, class, 0.7, Options{})
	if err != nil {
		t.Fatal(err)
	}
	sNet, err := ScoreSubstrate(cache, sub, 0.7, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if st := cache.Stats(); st.Hits != 0 || st.Misses != 4 {
		t.Errorf("stats = %+v, want 0 hits / 4 misses (no cross-kind sharing)", st)
	}
	if sChain != sNet {
		t.Errorf("network score %+v != chain score %+v for the same model", sNet, sChain)
	}
}
