package kantorovich

import (
	"math"
	"testing"

	"pufferfish/internal/core"
	"pufferfish/internal/dist"
	"pufferfish/internal/flu"
	"pufferfish/internal/laplace"
	"pufferfish/internal/markov"
	"pufferfish/internal/matrix"
)

// fig4Class is the synthetic Section 5.2 substrate at a test-friendly
// size: binary chains over a (p0, p1) grid.
func fig4Class(t *testing.T, T, gridN int) markov.Class {
	t.Helper()
	b, err := markov.NewBinaryInterval(0.2, 0.8, T)
	if err != nil {
		t.Fatal(err)
	}
	b.GridN = gridN
	return b
}

func threeStateClass(t *testing.T, T int) markov.Class {
	t.Helper()
	chain := markov.MustNew(
		[]float64{0.5, 0.3, 0.2},
		matrix.FromRows([][]float64{
			{0.6, 0.3, 0.1},
			{0.2, 0.5, 0.3},
			{0.25, 0.25, 0.5},
		}),
	)
	class, err := markov.NewSingleton(chain, T)
	if err != nil {
		t.Fatal(err)
	}
	return class
}

// TestCellProfileMatchesWassersteinScale: the W∞ half of a cell
// profile must coincide bit-for-bit with the existing Algorithm 1
// scale computation on the same instance, worst pair included.
func TestCellProfileMatchesWassersteinScale(t *testing.T) {
	class := threeStateClass(t, 6)
	for cell := 0; cell < 3; cell++ {
		p, err := CellProfile(nil, class, cell, Options{Parallelism: 1})
		if err != nil {
			t.Fatal(err)
		}
		w := make([]int, 3)
		w[cell] = 1
		inst := core.ChainCountInstance{Class: class, W: w, Parallelism: 1}
		want, worst, err := core.WassersteinScale(inst)
		if err != nil {
			t.Fatal(err)
		}
		if p.WInf != want {
			t.Errorf("cell %d: WInf = %v, want %v", cell, p.WInf, want)
		}
		if p.Label != worst.Label {
			t.Errorf("cell %d: label %q, want %q", cell, p.Label, worst.Label)
		}
		if p.W1 > p.WInf+1e-12 || !(p.W1 > 0) {
			t.Errorf("cell %d: W1 = %v outside (0, W∞ = %v]", cell, p.W1, p.WInf)
		}
		if p.Pairs == 0 {
			t.Errorf("cell %d: no pairs recorded", cell)
		}
	}
}

// TestScoreSerialParallelBitIdentical pins the engine determinism
// contract for the new subsystem: identical ChainScores at every
// parallelism, on both the Fig4 grid class and a 3-state singleton.
func TestScoreSerialParallelBitIdentical(t *testing.T) {
	classes := map[string]markov.Class{
		"fig4":   fig4Class(t, 5, 3),
		"3state": threeStateClass(t, 7),
	}
	for name, class := range classes {
		serial, err := Score(nil, class, 1.2, Options{Parallelism: 1})
		if err != nil {
			t.Fatal(err)
		}
		for _, par := range []int{0, 2, 5} {
			got, err := Score(nil, class, 1.2, Options{Parallelism: par})
			if err != nil {
				t.Fatal(err)
			}
			if got != serial {
				t.Errorf("%s: parallelism %d: %+v != serial %+v", name, par, got, serial)
			}
		}
		if serial.Sigma <= 0 || serial.Node < 0 || serial.Node >= class.K() {
			t.Errorf("%s: degenerate score %+v", name, serial)
		}
	}
}

// TestScoreCachedVsUncachedBitIdentical: nil cache, cold cache and
// warm cache must produce bit-identical scores, and the warm pass
// must be pure hits.
func TestScoreCachedVsUncachedBitIdentical(t *testing.T) {
	class := fig4Class(t, 4, 3)
	uncached, err := Score(nil, class, 0.7, Options{})
	if err != nil {
		t.Fatal(err)
	}
	cache := core.NewScoreCache()
	cold, err := Score(cache, class, 0.7, Options{})
	if err != nil {
		t.Fatal(err)
	}
	afterCold := cache.Stats()
	if afterCold.Misses != int64(class.K()) {
		t.Errorf("cold pass misses = %d, want %d (one per cell)", afterCold.Misses, class.K())
	}
	warm, err := Score(cache, class, 0.7, Options{})
	if err != nil {
		t.Fatal(err)
	}
	afterWarm := cache.Stats()
	if afterWarm.Misses != afterCold.Misses {
		t.Errorf("warm pass re-swept: misses %d -> %d", afterCold.Misses, afterWarm.Misses)
	}
	if afterWarm.Hits != afterCold.Hits+int64(class.K()) {
		t.Errorf("warm pass hits = %d, want %d", afterWarm.Hits, afterCold.Hits+int64(class.K()))
	}
	if cold != uncached || warm != uncached {
		t.Errorf("cached scores diverge: uncached %+v, cold %+v, warm %+v", uncached, cold, warm)
	}
	// The profile is ε-independent: a different ε reuses the entries.
	other, err := Score(cache, class, 2.5, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if cache.Stats().Misses != afterWarm.Misses {
		t.Error("changing ε re-swept the class")
	}
	if math.Abs(other.Sigma*2.5-uncached.Sigma*0.7) > 1e-12*uncached.Sigma {
		t.Errorf("σ·ε not constant across ε: %v vs %v", other.Sigma*2.5, uncached.Sigma*0.7)
	}
}

// TestScoreMultiAndBatch: the batched scorer must reproduce per-spec
// ScoreMulti bit-for-bit, and all-duplicate specs must cost one sweep
// per (cell, distinct length).
func TestScoreMultiAndBatch(t *testing.T) {
	classA := fig4Class(t, 6, 2)
	classB := threeStateClass(t, 5)
	specs := []core.MultiSpec{
		{Class: classA, Lengths: []int{3, 6, 3}},
		{Class: classB, Lengths: []int{5, 2}},
		{Class: classA, Lengths: []int{3, 6}}, // same distinct lengths as spec 0
	}
	batch, err := ScoreBatch(nil, specs, 1, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i, spec := range specs {
		want, err := ScoreMulti(nil, spec.Class, 1, Options{}, spec.Lengths)
		if err != nil {
			t.Fatal(err)
		}
		if batch[i] != want {
			t.Errorf("spec %d: batch %+v != ScoreMulti %+v", i, batch[i], want)
		}
	}
	if batch[0] != batch[2] {
		t.Errorf("identical specs scored differently: %+v vs %+v", batch[0], batch[2])
	}

	// Dedupe accounting: 8 copies of spec 0 cost k cells × 2 distinct
	// lengths misses, total, regardless of the copy count.
	dup := make([]core.MultiSpec, 8)
	for i := range dup {
		dup[i] = specs[0]
	}
	cache := core.NewScoreCache()
	if _, err := ScoreBatch(cache, dup, 1, Options{}); err != nil {
		t.Fatal(err)
	}
	wantMisses := int64(classA.K() * 2)
	if misses := cache.Stats().Misses; misses != wantMisses {
		t.Errorf("8 duplicate specs cost %d sweeps, want %d", misses, wantMisses)
	}

	// Empty batch and invalid specs.
	if out, err := ScoreBatch(nil, nil, 1, Options{}); err != nil || out != nil {
		t.Errorf("empty batch: (%v, %v), want (nil, nil)", out, err)
	}
	if _, err := ScoreBatch(nil, []core.MultiSpec{{Class: nil, Lengths: []int{3}}}, 1, Options{}); err == nil {
		t.Error("nil class accepted")
	}
	if _, err := ScoreBatch(nil, []core.MultiSpec{{Class: classA}}, 1, Options{}); err == nil {
		t.Error("empty lengths accepted")
	}
	if _, err := ScoreMulti(nil, classA, 1, Options{}, []int{0}); err == nil {
		t.Error("zero length accepted")
	}
}

// TestScorePrivacyFig4: the analytic verifier must certify the
// mechanism's per-cell releases on a small Fig4 class — count-level
// Laplace scale σ = k·W∞max/ε at the per-cell budget ε/k — and a
// 4× smaller scale must violate it (the calibration is not vacuous).
func TestScorePrivacyFig4(t *testing.T) {
	for name, class := range map[string]markov.Class{
		"fig4":   fig4Class(t, 4, 3),
		"3state": threeStateClass(t, 4),
	} {
		eps := 1.0
		score, err := Score(nil, class, eps, Options{})
		if err != nil {
			t.Fatal(err)
		}
		k := class.K()
		epsCell := eps / float64(k)
		grid := verifierGrid(float64(class.T()))
		for cell := 0; cell < k; cell++ {
			w := make([]int, k)
			w[cell] = 1
			if err := core.VerifyChainPufferfish(class, w, score.Sigma, epsCell, 1e-6, grid); err != nil {
				t.Errorf("%s: cell %d: privacy verifier rejected the Kantorovich scale: %v", name, cell, err)
			}
		}
		// Tightness: σ/4 at the same per-cell budget must fail on the
		// worst cell.
		w := make([]int, k)
		w[score.Node] = 1
		if err := core.VerifyChainPufferfish(class, w, score.Sigma/4, epsCell, 1e-6, grid); err == nil {
			t.Errorf("%s: σ/4 passed the verifier; the scale is vacuously large", name)
		}
	}
}

// verifierGrid spans the count range with margins, matching the other
// privacy tests' evaluation grids.
func verifierGrid(T float64) []float64 {
	var grid []float64
	for x := -T; x <= 2*T; x += 0.25 {
		grid = append(grid, x)
	}
	return grid
}

// TestFluProfilePrivacy: on the Section 3.1 flu substrate, the profile
// of the clique instance calibrates a Laplace release whose mixture
// densities obey the ε-Pufferfish log-ratio bound on a fine output
// grid — the core.Verify-style oracle for the non-chain substrate.
func TestFluProfilePrivacy(t *testing.T) {
	model := sec31Model(t)
	inst := flu.Instance{Models: []*flu.Model{model}}
	profile, err := ProfileInstance(inst, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if profile.W1 > profile.WInf || !(profile.WInf > 0) {
		t.Fatalf("degenerate flu profile %+v", profile)
	}
	// Serial and parallel profiles agree bit-for-bit.
	serial, err := ProfileInstance(inst, Options{Parallelism: 1})
	if err != nil {
		t.Fatal(err)
	}
	if serial != profile {
		t.Fatalf("flu profile parallel %+v != serial %+v", profile, serial)
	}

	eps := 0.8
	noise := laplace.New(profile.WInf / eps)
	pairs, err := inst.ConditionalPairs()
	if err != nil {
		t.Fatal(err)
	}
	for _, pair := range pairs {
		for out := -4.0; out <= 12; out += 0.2 {
			pa := mixtureDensity(pair.Mu, noise, out)
			pb := mixtureDensity(pair.Nu, noise, out)
			if r := math.Abs(math.Log(pa / pb)); r > eps+1e-9 {
				t.Fatalf("pair %q at output %.1f: |log ratio| = %v > ε", pair.Label, out, r)
			}
		}
	}
}

func sec31Model(t *testing.T) *flu.Model {
	t.Helper()
	c4, err := flu.FromProbs([]float64{0.1, 0.15, 0.5, 0.15, 0.1})
	if err != nil {
		t.Fatal(err)
	}
	c2, err := flu.FromProbs([]float64{0.3, 0.4, 0.3})
	if err != nil {
		t.Fatal(err)
	}
	model, err := flu.NewModel([]flu.Clique{c4, c2})
	if err != nil {
		t.Fatal(err)
	}
	return model
}

func mixtureDensity(d dist.Discrete, noise laplace.Dist, out float64) float64 {
	var p float64
	for i := 0; i < d.Len(); i++ {
		x, mass := d.Atom(i)
		p += mass * noise.PDF(out-x)
	}
	return p
}

func TestValidation(t *testing.T) {
	class := threeStateClass(t, 3)
	if _, err := Score(nil, class, 0, Options{}); err == nil {
		t.Error("ε = 0 accepted")
	}
	if _, err := Score(nil, class, math.Inf(1), Options{}); err == nil {
		t.Error("ε = ∞ accepted")
	}
	if _, err := Score(nil, nil, 1, Options{}); err == nil {
		t.Error("nil class accepted")
	}
	if _, err := CellProfile(nil, class, 3, Options{}); err == nil {
		t.Error("out-of-range cell accepted")
	}
	if _, err := CellProfile(nil, class, -1, Options{}); err == nil {
		t.Error("negative cell accepted")
	}
	if _, err := AdditiveNoise("cauchy", 1, 1, 0); err == nil {
		t.Error("unknown noise kind accepted")
	}
	if _, err := AdditiveNoise("laplace", 0, 1, 0); err == nil {
		t.Error("zero transport bound accepted")
	}
}

func TestAdditiveNoiseBackends(t *testing.T) {
	lap, err := AdditiveNoise("laplace", 2, 0.5, 0)
	if err != nil {
		t.Fatal(err)
	}
	if lap.Name() != "laplace" || lap.Scale() != 4 {
		t.Errorf("laplace backend: name %q scale %v, want laplace 4", lap.Name(), lap.Scale())
	}
	gauss, err := AdditiveNoise("gaussian", 2, 0.5, 1e-5)
	if err != nil {
		t.Fatal(err)
	}
	want := 2 * math.Sqrt(2*math.Log(1.25/1e-5)) / 0.5
	if gauss.Name() != "gaussian" || math.Abs(gauss.Scale()-want) > 1e-12 {
		t.Errorf("gaussian backend: name %q scale %v, want gaussian %v", gauss.Name(), gauss.Scale(), want)
	}
}
