// Package kantorovich implements the exponential-mechanism /
// Kantorovich route to Pufferfish privacy for the chain classes of
// Song–Wang–Chaudhuri, following Ding, "Kantorovich Mechanism for
// Pufferfish Privacy" (arXiv:2201.07388), with the general
// additive-noise calibration of Pierquin et al., "Rényi Pufferfish
// Privacy" (arXiv:2312.13985).
//
// # What it computes
//
// For a class Θ of Markov chains and the histogram query, every cell
// a gets a transport profile: the suprema, over all admissible secret
// pairs (X_i = u, X_i = v) and θ ∈ Θ, of two optimal-transport
// distances between the conditional distributions of the cell's count
// N_a = Σ_t 1[X_t = a]:
//
//   - W∞, the ∞-Wasserstein distance that calibrates the noise
//     (Theorem 3.2 of the source paper: the coupling argument bounds
//     the output density ratio by exp(d/scale) with d ≤ W∞);
//   - W₁, the 1-Wasserstein (Kantorovich) distance — the average-case
//     transport cost. W₁ ≤ W∞ always, and the ratio W₁/W∞ is the
//     paper-motivated diagnostic for how conservative the worst-case
//     calibration is on a given instantiation.
//
// # The mechanism
//
// The k-cell histogram is released with per-coordinate Laplace noise
// at the count-level scale k·max_a W∞(a)/ε: each cell's scalar
// release is (ε/k)-Pufferfish private by the W∞ coupling argument,
// and the joint release composes to ε (the Theorem 4.4 accounting the
// rest of this repository already relies on). The same W∞ bound also
// calibrates the discrete exponential mechanism (ExpMech — utility
// −|y − F(x)|, scale 2W∞/ε to absorb per-x normalizers on a bounded
// output grid) and the Gaussian backend of noise.Additive (the
// Pierquin et al. shift-reduction route).
//
// # Engine integration
//
// A release invokes the pair sweep once per cell per distinct session
// length, so the per-pair dynamic programs fan across the sched pool
// (bit-identical at every parallelism, like every scorer in this
// repository), and finished profiles are memoized in the shared
// core.ScoreCache keyed by (class fingerprint, cell) — profiles are
// ε-independent, so one warm entry serves every privacy budget.
package kantorovich

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"pufferfish/internal/core"
	"pufferfish/internal/dist"
	"pufferfish/internal/markov"
	"pufferfish/internal/noise"
	"pufferfish/internal/sched"
)

// Options tunes the profile sweeps.
type Options struct {
	// Parallelism bounds the worker count of the per-pair dynamic
	// programs and distance sweeps: 0 uses every CPU, 1 runs strictly
	// serial. Profiles and scores are bit-identical at every setting.
	Parallelism int
}

// ProfilePairs sweeps W∞ and W₁ over an explicit pair list: the W∞
// supremum keeps its first maximizer (for the diagnostic label), the
// W₁ supremum is tracked independently, and the chunk-ordered merge
// reproduces the serial loop bit-for-bit at every parallelism.
func ProfilePairs(pairs []core.DistributionPair, opt Options) core.CellScore {
	type chunkBest struct {
		wInf, w1 float64
		idx      int
	}
	best := sched.ReduceChunks(sched.New(opt.Parallelism), len(pairs), chunkBest{idx: -1},
		func(start, end int) chunkBest {
			local := chunkBest{idx: -1}
			for i := start; i < end; i++ {
				if d := dist.WassersteinInf(pairs[i].Mu, pairs[i].Nu); d > local.wInf {
					local.wInf = d
					local.idx = i
				}
				if d := dist.Wasserstein1(pairs[i].Mu, pairs[i].Nu); d > local.w1 {
					local.w1 = d
				}
			}
			return local
		},
		func(acc, v chunkBest) chunkBest {
			if v.w1 > acc.w1 {
				acc.w1 = v.w1
			}
			if v.wInf > acc.wInf {
				acc.wInf = v.wInf
				acc.idx = v.idx
			}
			return acc
		})
	p := core.CellScore{WInf: best.wInf, W1: best.w1, Pairs: len(pairs)}
	if best.idx >= 0 {
		p.Label = pairs[best.idx].Label
	}
	return p
}

// ProfileInstance computes the transport profile of any Pufferfish
// instantiation exposed as a WassersteinInstance — the chain classes
// here, but also e.g. the flu clique substrate.
func ProfileInstance(inst core.WassersteinInstance, opt Options) (core.CellScore, error) {
	pairs, err := inst.ConditionalPairs()
	if err != nil {
		return core.CellScore{}, err
	}
	if len(pairs) == 0 {
		return core.CellScore{}, errors.New("kantorovich: instantiation produced no secret pairs")
	}
	return ProfilePairs(pairs, opt), nil
}

// CellProfile returns the memoized transport profile of one histogram
// cell of a chain class, computing (and storing) it on a miss. cache
// may be nil.
func CellProfile(cache *core.ScoreCache, class markov.Class, cell int, opt Options) (core.CellScore, error) {
	if err := validate(class); err != nil {
		return core.CellScore{}, err
	}
	sub := core.NewClassSubstrate(class)
	return CellProfileSubstrate(cache, sub, cell, opt)
}

// CellProfileSubstrate is CellProfile for any Substrate — the network
// classes route here. Profiles are memoized under the substrate's
// kind-tagged fingerprint, so a chain and a network can never share an
// entry.
func CellProfileSubstrate(cache *core.ScoreCache, sub core.Substrate, cell int, opt Options) (core.CellScore, error) {
	if err := validateSubstrate(sub); err != nil {
		return core.CellScore{}, err
	}
	if cell < 0 || cell >= sub.K() {
		return core.CellScore{}, fmt.Errorf("kantorovich: cell %d outside [0,%d)", cell, sub.K())
	}
	return cellProfile(cache, sub, core.SubstrateFingerprint(sub), cell, sched.New(opt.Parallelism))
}

func cellProfile(cache *core.ScoreCache, sub core.Substrate, fp core.Fingerprint, cell int, pool sched.Pool) (core.CellScore, error) {
	if p, ok := cache.LookupCell(fp, cell); ok {
		return p, nil
	}
	w := make([]int, sub.K())
	w[cell] = 1
	inst := core.CountInstance{Substrate: sub, W: w, Parallelism: pool.Workers()}
	pairs, err := inst.ConditionalPairs()
	if err != nil {
		return core.CellScore{}, err
	}
	if len(pairs) == 0 {
		return core.CellScore{}, errors.New("kantorovich: class admits no secret pairs")
	}
	p := ProfilePairs(pairs, Options{Parallelism: pool.Workers()})
	cache.StoreCell(fp, cell, p)
	return p, nil
}

// Score computes the Kantorovich mechanism's ChainScore for a class:
// per-cell profiles for every one of the k cells, and
//
//	σ = k · max_a W∞(a) / ε
//
// so that a count-level release of the histogram at per-coordinate
// Laplace scale σ spends ε/k per cell and composes to ε. The result
// reuses ChainScore with the subsystem's meaning: Node is the 0-based
// worst cell (not a chain node), Influence carries that cell's W₁
// supremum, and Quilt/Ell stay zero.
func Score(cache *core.ScoreCache, class markov.Class, eps float64, opt Options) (core.ChainScore, error) {
	if err := validateEps(eps); err != nil {
		return core.ChainScore{}, err
	}
	if err := validate(class); err != nil {
		return core.ChainScore{}, err
	}
	sub := core.NewClassSubstrate(class)
	return scoreWith(cache, sub, core.SubstrateFingerprint(sub), eps, sched.New(opt.Parallelism))
}

// ScoreSubstrate is Score for any Substrate: the same per-cell
// profiles and σ = k·max_a W∞(a)/ε calibration, with the conditional
// count distributions supplied by the substrate (a chain's dynamic
// program, a polytree's message passing). This is the serving path for
// Bayesian-network releases.
func ScoreSubstrate(cache *core.ScoreCache, sub core.Substrate, eps float64, opt Options) (core.ChainScore, error) {
	if err := validateEps(eps); err != nil {
		return core.ChainScore{}, err
	}
	if err := validateSubstrate(sub); err != nil {
		return core.ChainScore{}, err
	}
	return scoreWith(cache, sub, core.SubstrateFingerprint(sub), eps, sched.New(opt.Parallelism))
}

func scoreWith(cache *core.ScoreCache, sub core.Substrate, fp core.Fingerprint, eps float64, pool sched.Pool) (core.ChainScore, error) {
	k := sub.K()
	var worst core.CellScore
	worstCell := -1
	for cell := 0; cell < k; cell++ {
		p, err := cellProfile(cache, sub, fp, cell, pool)
		if err != nil {
			return core.ChainScore{}, err
		}
		if worstCell < 0 || p.WInf > worst.WInf {
			worst, worstCell = p, cell
		}
	}
	return core.ChainScore{
		Sigma:     float64(k) * worst.WInf / eps,
		Node:      worstCell,
		Influence: worst.W1,
	}, nil
}

// distinctLengths validates a session-length multiset and reduces it
// to its sorted distinct values. Unlike the quilt scorers there is no
// plateau shortcut: W∞ has no constant-beyond-2ℓ+1 structure, so
// every distinct length is profiled (and cached) individually.
func distinctLengths(lengths []int) ([]int, error) {
	if len(lengths) == 0 {
		return nil, errors.New("kantorovich: no chain lengths")
	}
	seen := map[int]bool{}
	var out []int
	for _, l := range lengths {
		if l < 1 {
			return nil, fmt.Errorf("kantorovich: invalid chain length %d", l)
		}
		if !seen[l] {
			seen[l] = true
			out = append(out, l)
		}
	}
	sort.Ints(out)
	return out, nil
}

// ScoreMulti computes the score for a database of independent chains
// with the given lengths, all governed by the same class (whose own T
// is ignored): the maximum per-length score. Soundness for the joint
// database follows from convolution contraction — conditioning on a
// node of one session leaves every other session's count distribution
// as a common independent convolution term, and W∞(µ∗ρ, ν∗ρ) ≤
// W∞(µ, ν), so the within-session supremum bounds the database-wide
// one.
func ScoreMulti(cache *core.ScoreCache, class markov.Class, eps float64, opt Options, lengths []int) (core.ChainScore, error) {
	if err := validateEps(eps); err != nil {
		return core.ChainScore{}, err
	}
	if err := validate(class); err != nil {
		return core.ChainScore{}, err
	}
	distinct, err := distinctLengths(lengths)
	if err != nil {
		return core.ChainScore{}, err
	}
	pool := sched.New(opt.Parallelism)
	var best core.ChainScore
	for i, l := range distinct {
		sub := core.NewClassSubstrate(core.WithLength(class, l))
		sc, err := scoreWith(cache, sub, core.SubstrateFingerprint(sub), eps, pool)
		if err != nil {
			return core.ChainScore{}, err
		}
		if i == 0 || sc.Sigma > best.Sigma {
			best = sc
		}
	}
	return best, nil
}

// ScoreBatch computes ScoreMulti for every spec through one worker-
// pool invocation: the (class, length) sweeps are deduplicated by
// fingerprint across specs before any work is scheduled, fan across
// the pool with the usual outer/inner budget split, and consult the
// shared cache first. Results align with specs and are bit-for-bit
// identical to per-spec ScoreMulti calls at any parallelism. This is
// the serving layer's batch-endpoint path for MechKantorovich.
func ScoreBatch(cache *core.ScoreCache, specs []core.MultiSpec, eps float64, opt Options) ([]core.ChainScore, error) {
	if len(specs) == 0 {
		return nil, nil
	}
	if err := validateEps(eps); err != nil {
		return nil, err
	}
	type job struct {
		sub core.Substrate
		fp  core.Fingerprint
	}
	var jobs []job
	fpToJob := map[core.Fingerprint]int{}
	jobsOf := make([][]int, len(specs)) // spec → job indices, ascending length
	for i, spec := range specs {
		if err := validate(spec.Class); err != nil {
			return nil, fmt.Errorf("kantorovich: spec %d: %w", i, err)
		}
		distinct, err := distinctLengths(spec.Lengths)
		if err != nil {
			return nil, fmt.Errorf("kantorovich: spec %d: %w", i, err)
		}
		for _, l := range distinct {
			sub := core.NewClassSubstrate(core.WithLength(spec.Class, l))
			fp := core.SubstrateFingerprint(sub)
			j, ok := fpToJob[fp]
			if !ok {
				j = len(jobs)
				fpToJob[fp] = j
				jobs = append(jobs, job{sub: sub, fp: fp})
			}
			jobsOf[i] = append(jobsOf[i], j)
		}
	}
	res := make([]core.ChainScore, len(jobs))
	errs := make([]error, len(jobs))
	outer, inner := sched.New(opt.Parallelism).Split(len(jobs))
	outer.ForEach(len(jobs), func(j int) {
		res[j], errs[j] = scoreWith(cache, jobs[j].sub, jobs[j].fp, eps, inner)
	})
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	out := make([]core.ChainScore, len(specs))
	for i, js := range jobsOf {
		best := res[js[0]]
		for _, j := range js[1:] {
			if res[j].Sigma > best.Sigma {
				best = res[j]
			}
		}
		out[i] = best
	}
	return out, nil
}

// AdditiveNoise returns the noise.Additive backend calibrated so a
// scalar query with transport bound wInf released as value + noise
// meets the requested target: kind "laplace" gives b = W∞/ε
// (ε-Pufferfish, the Theorem 3.2 coupling argument; delta is
// ignored), kind "gaussian" gives σ = W∞·√(2·ln(1.25/δ))/ε (the
// (ε, δ) general additive-noise route of Pierquin et al., which the
// analytic calibration restricts to ε ∈ (0, 1] and δ ∈ (0, 1)).
func AdditiveNoise(kind string, wInf, eps, delta float64) (noise.Additive, error) {
	if err := validateEps(eps); err != nil {
		return nil, err
	}
	if !(wInf > 0) || math.IsInf(wInf, 1) {
		return nil, fmt.Errorf("kantorovich: invalid transport bound W∞ = %v", wInf)
	}
	switch kind {
	case "laplace":
		return noise.Laplace(wInf / eps)
	case "gaussian":
		sigma, err := noise.GaussianSigma(wInf, eps, delta)
		if err != nil {
			return nil, err
		}
		return noise.Gaussian(sigma)
	default:
		return nil, fmt.Errorf("kantorovich: unknown noise kind %q (want laplace|gaussian)", kind)
	}
}

// GaussianCountScale calibrates the Gaussian analogue of the
// mechanism's histogram release: per-coordinate N(0, σ²) noise at the
// count level, with each of the k cells granted the per-cell budget
// (ε/k, δ/k) so the joint release composes to (ε, δ) exactly as the
// Laplace path's ε/k-per-cell split does. wInf is the worst cell's
// transport bound (max_a W∞(a)); the returned σ is
//
//	σ = W∞max · √(2·ln(1.25·k/δ)) · k/ε
//
// (noise.GaussianSigma at the per-cell budget). The analytic
// calibration restricts the per-cell ε/k to (0, 1] and δ/k to (0, 1).
func GaussianCountScale(wInf, eps, delta float64, k int) (float64, error) {
	if k < 1 {
		return 0, fmt.Errorf("kantorovich: invalid cell count k = %d", k)
	}
	return noise.GaussianSigma(wInf, eps/float64(k), delta/float64(k))
}

func validate(class markov.Class) error {
	if class == nil {
		return errors.New("kantorovich: nil distribution class")
	}
	if class.T() < 1 {
		return fmt.Errorf("kantorovich: chain length %d < 1", class.T())
	}
	if class.K() < 2 {
		return fmt.Errorf("kantorovich: state space needs at least 2 states, got %d", class.K())
	}
	return nil
}

func validateSubstrate(sub core.Substrate) error {
	if sub == nil {
		return errors.New("kantorovich: nil substrate")
	}
	if sub.Len() < 1 {
		return fmt.Errorf("kantorovich: substrate length %d < 1", sub.Len())
	}
	if sub.K() < 2 {
		return fmt.Errorf("kantorovich: state space needs at least 2 states, got %d", sub.K())
	}
	return nil
}

func validateEps(eps float64) error {
	if !(eps > 0) || math.IsInf(eps, 1) || math.IsNaN(eps) {
		return fmt.Errorf("kantorovich: invalid privacy parameter ε = %v", eps)
	}
	return nil
}
