package kantorovich

import (
	"testing"

	"pufferfish/internal/core"
	"pufferfish/internal/markov"
)

// Pinned immediately before the Substrate refactor: the Kantorovich
// score and worst-cell transport profile of a fixed singleton class,
// at parallelism 1 and N. Any non-bit-identical change to the pair
// enumeration, the dynamic programs, or the distance sweeps fails here.
func TestGoldenKantorovichEveryParallelism(t *testing.T) {
	class, err := markov.NewSingleton(markov.BinaryChain(0.3, 0.8, 0.6), 12)
	if err != nil {
		t.Fatal(err)
	}
	for _, par := range []int{1, 0} {
		s, err := Score(nil, class, 0.7, Options{Parallelism: par})
		if err != nil {
			t.Fatalf("Score p=%d: %v", par, err)
		}
		want := core.ChainScore{Sigma: 8.5714285714285712, Node: 0, Influence: 2.337963037304668}
		if s != want {
			t.Errorf("Score p=%d drifted from pre-refactor golden:\n got  %+v\n want %+v", par, s, want)
		}
		p, err := CellProfile(nil, class, 0, Options{Parallelism: par})
		if err != nil {
			t.Fatalf("CellProfile p=%d: %v", par, err)
		}
		wantCell := core.CellScore{WInf: 3, W1: 2.337963037304668, Label: "X2: 0 vs 1 @ θ1", Pairs: 12}
		if p != wantCell {
			t.Errorf("CellProfile p=%d drifted from pre-refactor golden:\n got  %+v\n want %+v", par, p, wantCell)
		}
	}
}
