package kantorovich

import (
	"errors"
	"fmt"
	"math"
	"math/rand/v2"
)

// ExpMech is the discrete exponential mechanism of the Kantorovich
// route: given a scalar query value F(X), it samples an output y from
// a fixed finite grid with probability
//
//	P(y) ∝ exp(−ε·|y − F(X)| / (2·W∞)),
//
// where W∞ is the instantiation's transport bound (sup over secret
// pairs and θ of the ∞-Wasserstein distance between the conditional
// query distributions).
//
// Privacy: couple the two conditional distributions of F with the
// W∞-optimal plan. Each coupled pair moves F by at most W∞, so each
// unnormalized weight changes by a factor ≤ exp(ε/2) and each per-x
// normalizer Z_x = Σ_y exp(−ε|y − F(x)|/(2W∞)) by another factor
// ≤ exp(ε/2) — the output pmf ratio is ≤ exp(ε) for every y, i.e. the
// release is ε-Pufferfish private. The factor 2 is the price of the
// bounded output grid relative to the shift-invariant additive route
// (Laplace at W∞/ε), bought back by the mechanism's ability to
// restrict outputs to the query's feasible range.
type ExpMech struct {
	grid      []float64
	wInf, eps float64
}

// NewExpMech validates the grid (non-empty, finite, strictly
// increasing), the transport bound, and ε.
func NewExpMech(grid []float64, wInf, eps float64) (*ExpMech, error) {
	if err := validateEps(eps); err != nil {
		return nil, err
	}
	if !(wInf > 0) || math.IsInf(wInf, 1) {
		return nil, fmt.Errorf("kantorovich: invalid transport bound W∞ = %v", wInf)
	}
	if len(grid) == 0 {
		return nil, errors.New("kantorovich: empty output grid")
	}
	for i, y := range grid {
		if math.IsNaN(y) || math.IsInf(y, 0) {
			return nil, fmt.Errorf("kantorovich: invalid grid point %v", y)
		}
		if i > 0 && grid[i-1] >= y {
			return nil, fmt.Errorf("kantorovich: grid not strictly increasing at %v", y)
		}
	}
	out := make([]float64, len(grid))
	copy(out, grid)
	return &ExpMech{grid: out, wInf: wInf, eps: eps}, nil
}

// Grid returns the output grid (a copy).
func (m *ExpMech) Grid() []float64 {
	out := make([]float64, len(m.grid))
	copy(out, m.grid)
	return out
}

// PMF returns the output distribution for a query value, aligned with
// Grid. Weights are computed relative to the grid point closest to
// value, so the largest exponent is 0 and the normalization never
// underflows on wide grids.
func (m *ExpMech) PMF(value float64) []float64 {
	best := math.Inf(1)
	for _, y := range m.grid {
		if d := math.Abs(y - value); d < best {
			best = d
		}
	}
	w := make([]float64, len(m.grid))
	var total float64
	for i, y := range m.grid {
		w[i] = math.Exp(-m.eps * (math.Abs(y-value) - best) / (2 * m.wInf))
		total += w[i]
	}
	for i := range w {
		w[i] /= total
	}
	return w
}

// Sample draws one output by inverse-CDF over the grid.
func (m *ExpMech) Sample(value float64, rng *rand.Rand) float64 {
	pmf := m.PMF(value)
	//privlint:allow noisesource ExpMech is itself a calibrated mechanism; the caller injects the seeded rng
	u := rng.Float64()
	var cum float64
	for i, p := range pmf {
		cum += p
		if u < cum {
			return m.grid[i]
		}
	}
	return m.grid[len(m.grid)-1]
}
