package kantorovich

import (
	"math"
	"math/rand/v2"
	"testing"

	"pufferfish/internal/core"
	"pufferfish/internal/dist"
)

// TestExpMechPMF: the output distribution is a proper pmf, peaks at
// the grid point nearest the query value, and consecutive weights obey
// the exponential decay exactly.
func TestExpMechPMF(t *testing.T) {
	grid := []float64{0, 1, 2, 3, 4}
	m, err := NewExpMech(grid, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	pmf := m.PMF(2)
	var total float64
	for _, p := range pmf {
		total += p
	}
	if math.Abs(total-1) > 1e-12 {
		t.Errorf("pmf sums to %v", total)
	}
	if pmf[2] <= pmf[1] || pmf[2] <= pmf[3] {
		t.Errorf("pmf does not peak at the query value: %v", pmf)
	}
	// w(y) ∝ exp(−ε|y−2|/(2W)) with ε=1, W=2 → ratio e^{1/4} per unit.
	if r := pmf[2] / pmf[3]; math.Abs(r-math.Exp(0.25)) > 1e-12 {
		t.Errorf("decay ratio %v, want e^0.25", r)
	}
	if math.Abs(pmf[1]-pmf[3]) > 1e-15 {
		t.Errorf("pmf not symmetric around the value: %v vs %v", pmf[1], pmf[3])
	}
}

// TestExpMechPufferfishPrivacy: the end-to-end analytic check for the
// exponential mechanism — for a small chain class, every secret pair's
// output pmf ratio stays within exp(ε) on every grid point, with the
// scale taken from the subsystem's own profile.
func TestExpMechPufferfishPrivacy(t *testing.T) {
	class := fig4Class(t, 4, 3)
	eps := 0.9
	cell := 1
	profile, err := CellProfile(nil, class, cell, Options{})
	if err != nil {
		t.Fatal(err)
	}
	grid := []float64{0, 1, 2, 3, 4} // feasible counts for T = 4
	m, err := NewExpMech(grid, profile.WInf, eps)
	if err != nil {
		t.Fatal(err)
	}
	w := make([]int, class.K())
	w[cell] = 1
	inst := core.ChainCountInstance{Class: class, W: w}
	pairs, err := inst.ConditionalPairs()
	if err != nil {
		t.Fatal(err)
	}
	for _, pair := range pairs {
		pa := mixturePMF(m, pair.Mu)
		pb := mixturePMF(m, pair.Nu)
		for i := range grid {
			if r := math.Abs(math.Log(pa[i] / pb[i])); r > eps+1e-9 {
				t.Fatalf("pair %q, output %v: |log ratio| = %v > ε = %v", pair.Label, grid[i], r, eps)
			}
		}
	}
}

// mixturePMF returns the output pmf of the exponential mechanism when
// the query value is distributed as d.
func mixturePMF(m *ExpMech, d dist.Discrete) []float64 {
	out := make([]float64, len(m.Grid()))
	for i := 0; i < d.Len(); i++ {
		x, mass := d.Atom(i)
		for j, p := range m.PMF(x) {
			out[j] += mass * p
		}
	}
	return out
}

func TestExpMechSample(t *testing.T) {
	m, err := NewExpMech([]float64{0, 1, 2}, 1, 2)
	if err != nil {
		t.Fatal(err)
	}
	// Same seed, same draws; outputs always land on the grid.
	r1 := rand.New(rand.NewPCG(5, 6))
	r2 := rand.New(rand.NewPCG(5, 6))
	counts := map[float64]int{}
	for i := 0; i < 2000; i++ {
		a := m.Sample(1, r1)
		if b := m.Sample(1, r2); a != b {
			t.Fatal("sampling is not deterministic under a fixed seed")
		}
		counts[a]++
	}
	if len(counts) != 3 {
		t.Errorf("2000 draws hit %d of 3 grid points", len(counts))
	}
	if counts[1] <= counts[0] || counts[1] <= counts[2] {
		t.Errorf("mode not at the query value: %v", counts)
	}
}

func TestExpMechValidation(t *testing.T) {
	good := []float64{0, 1}
	cases := []struct {
		grid      []float64
		wInf, eps float64
	}{
		{nil, 1, 1},
		{[]float64{1, 0}, 1, 1},
		{[]float64{0, 0}, 1, 1},
		{[]float64{0, math.NaN()}, 1, 1},
		{good, 0, 1},
		{good, math.Inf(1), 1},
		{good, 1, 0},
		{good, 1, math.NaN()},
	}
	for i, c := range cases {
		if _, err := NewExpMech(c.grid, c.wInf, c.eps); err == nil {
			t.Errorf("case %d: invalid mechanism accepted", i)
		}
	}
	m, err := NewExpMech(good, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	g := m.Grid()
	g[0] = 99 // mutating the copy must not corrupt the mechanism
	if m.Grid()[0] != 0 {
		t.Error("Grid returned the internal slice")
	}
}

// TestScoreMultiLengthMax: σ over a multi-length database is the max
// of the per-length scores (and not just the longest session's).
func TestScoreMultiLengthMax(t *testing.T) {
	class := threeStateClass(t, 9)
	lengths := []int{2, 5, 9}
	multi, err := ScoreMulti(nil, class, 1, Options{}, lengths)
	if err != nil {
		t.Fatal(err)
	}
	var want core.ChainScore
	for i, l := range lengths {
		sc, err := Score(nil, core.WithLength(class, l), 1, Options{})
		if err != nil {
			t.Fatal(err)
		}
		if i == 0 || sc.Sigma > want.Sigma {
			want = sc
		}
	}
	if multi != want {
		t.Errorf("ScoreMulti %+v != max of per-length scores %+v", multi, want)
	}
}
