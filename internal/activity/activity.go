// Package activity simulates the physical-activity-monitoring
// substrate of Section 5.3.1.
//
// The paper's dataset (Ellis et al.) — 40 cyclists, 16 older women,
// 36 overweight women; four activities recorded every 12 seconds over
// a week; gaps above 10 minutes treated as the start of a new
// independent Markov chain — is not redistributable, so this package
// generates groups with the same shape: each participant wears the
// sensor in sessions, each session is a fresh draw from the group's
// ground-truth four-state chain started at stationarity, and session
// boundaries are exactly the paper's gap-split chains. The mechanisms
// never see the ground truth; as in the paper, they work from the
// empirical transition matrix estimated from the (simulated) data.
// See DESIGN.md §2.1 for why this preserves what Table 1 and
// Figure 4(d–f) measure.
package activity

import (
	"fmt"
	"math/rand/v2"

	"pufferfish/internal/markov"
	"pufferfish/internal/matrix"
)

// The four recorded activities (cycling is merged into Active for the
// cyclist group, as in the paper).
const (
	Active = iota
	StandStill
	StandMoving
	Sedentary
	NumActivities
)

// ActivityName returns a printable label for a state.
func ActivityName(s int) string {
	switch s {
	case Active:
		return "Active"
	case StandStill:
		return "Stand Still"
	case StandMoving:
		return "Stand Moving"
	case Sedentary:
		return "Sedentary"
	default:
		return fmt.Sprintf("state%d", s)
	}
}

// Group identifies a participant cohort.
type Group int

// The three cohorts of the study.
const (
	Cyclists Group = iota
	OlderWomen
	OverweightWomen
)

// GroupName returns the cohort label used in the tables.
func (g Group) String() string {
	switch g {
	case Cyclists:
		return "cyclist"
	case OlderWomen:
		return "older woman"
	case OverweightWomen:
		return "overweight woman"
	default:
		return fmt.Sprintf("group%d", int(g))
	}
}

// Groups lists all cohorts in table order.
var Groups = []Group{Cyclists, OlderWomen, OverweightWomen}

// Profile is a cohort's ground truth: the stationary activity mix, the
// switching rate of the chain, and the population/wear parameters.
type Profile struct {
	Group Group
	// Participants is the cohort size (40/16/36 in the paper).
	Participants int
	// Stationary is the ground-truth activity mix; cyclists are most
	// active, overweight women most sedentary (Figure 4 lower row).
	Stationary []float64
	// SwitchRate c sets the ground-truth transition matrix
	// P = (1−c)·I + c·1πᵀ: activities persist for ~1/c epochs
	// (12-second epochs, so c ≈ 0.06 means ~3-minute bouts).
	SwitchRate float64
	// ShortSessions is the [min,max] length (in epochs) of ordinary
	// wear sessions; LongSessions of the occasional long ones;
	// LongSessionProb mixes them. Sessions are the paper's gap-split
	// chains.
	ShortSessions   [2]int
	LongSessions    [2]int
	LongSessionProb float64
	// SessionsPerPerson controls total observations (the paper
	// averages >9,000 per person).
	SessionsPerPerson int
}

// DefaultProfile returns the calibrated cohort parameters.
func DefaultProfile(g Group) Profile {
	p := Profile{
		Group:             g,
		ShortSessions:     [2]int{100, 400},
		LongSessions:      [2]int{1500, 3000},
		LongSessionProb:   0.2,
		SessionsPerPerson: 15,
	}
	switch g {
	case Cyclists:
		p.Participants = 40
		p.Stationary = []float64{0.35, 0.15, 0.20, 0.30}
		p.SwitchRate = 0.07
	case OlderWomen:
		p.Participants = 16
		p.Stationary = []float64{0.10, 0.20, 0.25, 0.45}
		p.SwitchRate = 0.06
	default: // OverweightWomen
		p.Participants = 36
		p.Stationary = []float64{0.06, 0.14, 0.20, 0.60}
		p.SwitchRate = 0.05
	}
	return p
}

// TrueChain returns the ground-truth chain P = (1−c)·I + c·1πᵀ
// started from its stationary distribution π.
func (p Profile) TrueChain() (markov.Chain, error) {
	k := len(p.Stationary)
	if k != NumActivities {
		return markov.Chain{}, fmt.Errorf("activity: profile has %d states, want %d", k, NumActivities)
	}
	if !(p.SwitchRate > 0 && p.SwitchRate < 1) {
		return markov.Chain{}, fmt.Errorf("activity: invalid switch rate %v", p.SwitchRate)
	}
	rows := make([][]float64, k)
	for x := 0; x < k; x++ {
		rows[x] = make([]float64, k)
		for y := 0; y < k; y++ {
			rows[x][y] = p.SwitchRate * p.Stationary[y]
			if x == y {
				rows[x][y] += 1 - p.SwitchRate
			}
		}
	}
	return markov.New(append([]float64{}, p.Stationary...), matrix.FromRows(rows))
}

// Person is one participant's data: wear sessions, each an independent
// chain (the paper's gap-split preprocessing output).
type Person struct {
	Sessions [][]int
}

// Observations returns the participant's total epoch count.
func (p Person) Observations() int {
	var n int
	for _, s := range p.Sessions {
		n += len(s)
	}
	return n
}

// LongestSession returns the length of the participant's longest
// chain (the M of the paper's GroupDP analysis).
func (p Person) LongestSession() int {
	var m int
	for _, s := range p.Sessions {
		if len(s) > m {
			m = len(s)
		}
	}
	return m
}

// Flatten concatenates all sessions (for whole-person queries).
func (p Person) Flatten() []int {
	out := make([]int, 0, p.Observations())
	for _, s := range p.Sessions {
		out = append(out, s...)
	}
	return out
}

// Dataset is one simulated cohort.
type Dataset struct {
	Profile Profile
	People  []Person
}

// Generate simulates a cohort from its profile.
func Generate(p Profile, rng *rand.Rand) (*Dataset, error) {
	truth, err := p.TrueChain()
	if err != nil {
		return nil, err
	}
	if p.Participants < 1 || p.SessionsPerPerson < 1 {
		return nil, fmt.Errorf("activity: invalid population parameters %+v", p)
	}
	ds := &Dataset{Profile: p}
	for i := 0; i < p.Participants; i++ {
		var person Person
		for s := 0; s < p.SessionsPerPerson; s++ {
			var lo, hi int
			if rng.Float64() < p.LongSessionProb {
				lo, hi = p.LongSessions[0], p.LongSessions[1]
			} else {
				lo, hi = p.ShortSessions[0], p.ShortSessions[1]
			}
			T := lo + rng.IntN(hi-lo+1)
			person.Sessions = append(person.Sessions, truth.Sample(T, rng))
		}
		ds.People = append(ds.People, person)
	}
	return ds, nil
}

// AllSessions returns every chain in the cohort.
func (d *Dataset) AllSessions() [][]int {
	var out [][]int
	for _, p := range d.People {
		out = append(out, p.Sessions...)
	}
	return out
}

// LongestSession returns the longest chain in the cohort.
func (d *Dataset) LongestSession() int {
	var m int
	for _, p := range d.People {
		if l := p.LongestSession(); l > m {
			m = l
		}
	}
	return m
}

// TotalObservations returns the cohort's total epoch count.
func (d *Dataset) TotalObservations() int {
	var n int
	for _, p := range d.People {
		n += p.Observations()
	}
	return n
}

// EmpiricalChain estimates the cohort transition matrix from all
// sessions, started from its stationary distribution — the paper's
// singleton class Θ = {(q_θ, P_θ)} for the real-data experiments.
// Light additive smoothing keeps the estimate irreducible when a rare
// transition goes unobserved.
func (d *Dataset) EmpiricalChain(smoothing float64) (markov.Chain, error) {
	return markov.EstimateStationary(d.AllSessions(), NumActivities, smoothing)
}
