package activity

import (
	"math"
	"math/rand/v2"
	"testing"

	"pufferfish/internal/floats"
)

func TestDefaultProfiles(t *testing.T) {
	for _, g := range Groups {
		p := DefaultProfile(g)
		if !floats.IsProbVector(p.Stationary, 1e-9) {
			t.Errorf("%v: stationary %v not a distribution", g, p.Stationary)
		}
		chain, err := p.TrueChain()
		if err != nil {
			t.Fatalf("%v: %v", g, err)
		}
		pi, err := chain.Stationary()
		if err != nil {
			t.Fatal(err)
		}
		if !floats.EqSlices(pi, p.Stationary, 1e-9) {
			t.Errorf("%v: chain stationary %v != profile %v", g, pi, p.Stationary)
		}
		if ok, _ := chain.Reversible(1e-9); !ok {
			t.Errorf("%v: P=(1−c)I+c·1πᵀ should be reversible", g)
		}
	}
	// Cohort sizes from the paper.
	if DefaultProfile(Cyclists).Participants != 40 ||
		DefaultProfile(OlderWomen).Participants != 16 ||
		DefaultProfile(OverweightWomen).Participants != 36 {
		t.Error("cohort sizes drifted from the paper's 40/16/36")
	}
	// Qualitative ordering: cyclists most active, overweight women
	// most sedentary.
	cy := DefaultProfile(Cyclists).Stationary
	ow := DefaultProfile(OverweightWomen).Stationary
	olw := DefaultProfile(OlderWomen).Stationary
	if !(cy[Active] > olw[Active] && olw[Active] > ow[Active]) {
		t.Error("active ordering wrong")
	}
	if !(ow[Sedentary] > olw[Sedentary] && olw[Sedentary] > cy[Sedentary]) {
		t.Error("sedentary ordering wrong")
	}
}

func TestGenerateShape(t *testing.T) {
	p := DefaultProfile(OlderWomen)
	rng := rand.New(rand.NewPCG(31, 32))
	ds, err := Generate(p, rng)
	if err != nil {
		t.Fatal(err)
	}
	if len(ds.People) != 16 {
		t.Fatalf("%d people", len(ds.People))
	}
	for _, person := range ds.People {
		if len(person.Sessions) != p.SessionsPerPerson {
			t.Fatalf("%d sessions", len(person.Sessions))
		}
		for _, s := range person.Sessions {
			if len(s) < p.ShortSessions[0] || len(s) > p.LongSessions[1] {
				t.Fatalf("session length %d outside bounds", len(s))
			}
		}
		// The paper reports >9,000 observations per person on average;
		// our calibration should land in the same regime.
		if person.Observations() < 3000 {
			t.Errorf("person has only %d observations", person.Observations())
		}
	}
	avg := float64(ds.TotalObservations()) / float64(len(ds.People))
	if avg < 6000 || avg > 20000 {
		t.Errorf("average observations per person = %v, want ≈9000", avg)
	}
	if ds.LongestSession() < 1000 {
		t.Errorf("longest session %d; calibration expects some long chains", ds.LongestSession())
	}
}

func TestEmpiricalChainRecoversTruth(t *testing.T) {
	p := DefaultProfile(Cyclists)
	rng := rand.New(rand.NewPCG(33, 34))
	ds, err := Generate(p, rng)
	if err != nil {
		t.Fatal(err)
	}
	est, err := ds.EmpiricalChain(0.5)
	if err != nil {
		t.Fatal(err)
	}
	truth, _ := p.TrueChain()
	for x := 0; x < NumActivities; x++ {
		for y := 0; y < NumActivities; y++ {
			if math.Abs(est.P.At(x, y)-truth.P.At(x, y)) > 0.02 {
				t.Errorf("P(%d,%d): est %v vs truth %v", x, y, est.P.At(x, y), truth.P.At(x, y))
			}
		}
	}
	if !est.Irreducible() {
		t.Error("empirical chain not irreducible")
	}
	pi, err := est.Stationary()
	if err != nil {
		t.Fatal(err)
	}
	if !floats.EqSlices(est.Init, pi, 1e-9) {
		t.Error("empirical chain not started at stationarity")
	}
}

func TestPersonHelpers(t *testing.T) {
	person := Person{Sessions: [][]int{{0, 1, 2}, {3, 3, 3, 3, 3}}}
	if person.Observations() != 8 || person.LongestSession() != 5 {
		t.Error("Observations/LongestSession wrong")
	}
	flat := person.Flatten()
	if len(flat) != 8 || flat[3] != 3 {
		t.Errorf("Flatten = %v", flat)
	}
}

func TestActivityNames(t *testing.T) {
	if ActivityName(Active) != "Active" || ActivityName(Sedentary) != "Sedentary" {
		t.Error("names wrong")
	}
	if Cyclists.String() != "cyclist" || OverweightWomen.String() != "overweight woman" {
		t.Error("group names wrong")
	}
}

func TestGenerateValidation(t *testing.T) {
	p := DefaultProfile(Cyclists)
	p.Participants = 0
	rng := rand.New(rand.NewPCG(1, 1))
	if _, err := Generate(p, rng); err == nil {
		t.Error("zero participants accepted")
	}
	p = DefaultProfile(Cyclists)
	p.SwitchRate = 0
	if _, err := Generate(p, rng); err == nil {
		t.Error("zero switch rate accepted")
	}
}
