package matrix

// Register-blocked matmul micro-kernel. The naive MulInto loop is an
// axpy over destination rows: every k step re-loads and re-stores the
// whole dst row from memory. For the small state spaces of the binary
// experiments that is fine (and the aik == 0 skip wins on sparse
// rows), but the k = 51 electricity chain and larger state spaces pay
// for the memory traffic. The blocked path computes a 2×4 destination
// tile at a time with the k loop innermost, so all eight partial sums
// live in registers and every loaded a/b value is reused.
//
// Bit-compatibility contract: for every destination element the
// blocked kernel accumulates products in the same order as the naive
// loop — increasing k. The only difference is that the naive loop
// skips k when a(i,k) == 0 while the blocked kernel adds the 0·b(k,j)
// product. For finite operands that addition is an exact identity
// (the accumulator is never −0: it starts at +0 and (+0)+(±0) = +0),
// so the results are bit-for-bit identical — pinned by
// TestMulIntoBlockedBitIdentical. Non-finite operands (±Inf, NaN)
// would break this, but no caller produces them.

// blockedMinDim is the size threshold above which MulInto takes the
// blocked path: all three dimensions must be at least this large.
// Below it the naive axpy loop (with its zero-skip, which matters for
// the sparse 2-state chains) wins.
const blockedMinDim = 8

// mulBlockedInto computes dst = a·b with 2×4 register tiling (eight
// accumulators, four b values and two a values stay within amd64's
// sixteen scalar FP registers; a 4×4 tile spills and loses the win).
// Preconditions (dimensions, no aliasing) are checked by MulInto.
func mulBlockedInto(dst, a, b *Dense) {
	m, kk, n := a.rows, a.cols, b.cols
	ad, bd, dd := a.data, b.data, dst.data
	i := 0
	for ; i+2 <= m; i += 2 {
		a0 := ad[i*kk : (i+1)*kk : (i+1)*kk]
		a1 := ad[(i+1)*kk : (i+2)*kk : (i+2)*kk]
		j := 0
		for ; j+4 <= n; j += 4 {
			var c00, c01, c02, c03 float64
			var c10, c11, c12, c13 float64
			bp := j
			for k := 0; k < kk; k++ {
				bk := bd[bp : bp+4 : bp+4]
				b0, b1, b2, b3 := bk[0], bk[1], bk[2], bk[3]
				v0, v1 := a0[k], a1[k]
				c00 += v0 * b0
				c01 += v0 * b1
				c02 += v0 * b2
				c03 += v0 * b3
				c10 += v1 * b0
				c11 += v1 * b1
				c12 += v1 * b2
				c13 += v1 * b3
				bp += n
			}
			d0 := dd[i*n+j : i*n+j+4 : i*n+j+4]
			d0[0], d0[1], d0[2], d0[3] = c00, c01, c02, c03
			d1 := dd[(i+1)*n+j : (i+1)*n+j+4 : (i+1)*n+j+4]
			d1[0], d1[1], d1[2], d1[3] = c10, c11, c12, c13
		}
		for ; j < n; j++ { // remainder columns, two rows at a time
			var c0, c1 float64
			bp := j
			for k := 0; k < kk; k++ {
				bkj := bd[bp]
				c0 += a0[k] * bkj
				c1 += a1[k] * bkj
				bp += n
			}
			dd[i*n+j] = c0
			dd[(i+1)*n+j] = c1
		}
	}
	for ; i < m; i++ { // remainder row
		arow := ad[i*kk : (i+1)*kk : (i+1)*kk]
		j := 0
		for ; j+4 <= n; j += 4 {
			var c0, c1, c2, c3 float64
			bp := j
			for k := 0; k < kk; k++ {
				bk := bd[bp : bp+4 : bp+4]
				v := arow[k]
				c0 += v * bk[0]
				c1 += v * bk[1]
				c2 += v * bk[2]
				c3 += v * bk[3]
				bp += n
			}
			d0 := dd[i*n+j : i*n+j+4 : i*n+j+4]
			d0[0], d0[1], d0[2], d0[3] = c0, c1, c2, c3
		}
		for ; j < n; j++ {
			var s float64
			bp := j
			for k := 0; k < kk; k++ {
				s += arow[k] * bd[bp]
				bp += n
			}
			dd[i*n+j] = s
		}
	}
}
