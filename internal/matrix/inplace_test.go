package matrix

import (
	"math"
	"math/rand/v2"
	"sync"
	"testing"
)

func randomDense(rows, cols int, rng *rand.Rand) *Dense {
	m := NewDense(rows, cols)
	for i := 0; i < rows; i++ {
		for j := 0; j < cols; j++ {
			m.Set(i, j, rng.Float64())
		}
	}
	return m
}

func densesEqual(t *testing.T, got, want *Dense, label string) {
	t.Helper()
	gr, gc := got.Dims()
	wr, wc := want.Dims()
	if gr != wr || gc != wc {
		t.Fatalf("%s: dims %d×%d != %d×%d", label, gr, gc, wr, wc)
	}
	for i := 0; i < gr; i++ {
		for j := 0; j < gc; j++ {
			if got.At(i, j) != want.At(i, j) {
				t.Fatalf("%s: (%d,%d) = %v, want %v", label, i, j, got.At(i, j), want.At(i, j))
			}
		}
	}
}

func TestMulIntoMatchesMul(t *testing.T) {
	rng := rand.New(rand.NewPCG(7, 8))
	for _, dims := range [][3]int{{1, 1, 1}, {2, 3, 4}, {5, 5, 5}, {4, 1, 6}} {
		a := randomDense(dims[0], dims[1], rng)
		b := randomDense(dims[1], dims[2], rng)
		dst := NewDense(dims[0], dims[2])
		// Pre-dirty the destination: MulInto must overwrite, not add.
		for i := range dims[0] {
			for j := range dims[2] {
				dst.Set(i, j, 99)
			}
		}
		MulInto(dst, a, b)
		densesEqual(t, dst, a.Mul(b), "MulInto")
	}
}

func TestMulIntoPanics(t *testing.T) {
	a := NewDense(2, 3)
	b := NewDense(3, 2)
	for name, fn := range map[string]func(){
		"dim mismatch": func() { MulInto(NewDense(2, 2), a, NewDense(2, 2)) },
		"bad dst":      func() { MulInto(NewDense(3, 3), a, b) },
		"alias":        func() { sq := NewDense(2, 2); MulInto(sq, sq, sq) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: no panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestMulVecIntoAndVecMulInto(t *testing.T) {
	rng := rand.New(rand.NewPCG(9, 10))
	m := randomDense(3, 4, rng)
	x4 := []float64{1, -2, 0.5, 3}
	x3 := []float64{0.25, 0, -1}

	got := m.MulVecInto(make([]float64, 3), x4)
	want := m.MulVec(x4)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("MulVecInto[%d] = %v, want %v", i, got[i], want[i])
		}
	}

	got = m.VecMulInto(make([]float64, 4), x3)
	want = m.VecMul(x3)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("VecMulInto[%d] = %v, want %v", i, got[i], want[i])
		}
	}
}

// densesClose allows last-ulp divergence: binary exponentiation
// associates the products differently from sequential multiplication.
func densesClose(t *testing.T, got, want *Dense, label string) {
	t.Helper()
	gr, gc := got.Dims()
	for i := 0; i < gr; i++ {
		for j := 0; j < gc; j++ {
			if diff := math.Abs(got.At(i, j) - want.At(i, j)); diff > 1e-12*(1+math.Abs(want.At(i, j))) {
				t.Fatalf("%s: (%d,%d) = %v, want %v", label, i, j, got.At(i, j), want.At(i, j))
			}
		}
	}
}

func TestPowUsesScratchAndMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewPCG(11, 12))
	m := randomDense(4, 4, rng)
	naive := Identity(4)
	for n := 0; n <= 9; n++ {
		densesClose(t, m.Pow(n), naive, "Pow")
		naive = naive.Mul(m)
	}
}

// seqPowers returns P^1 … P^n by sequential multiplication — the exact
// association order PowerCache uses, so comparisons are bit-exact.
func seqPowers(m *Dense, n int) []*Dense {
	out := make([]*Dense, n+1)
	out[0] = Identity(m.rows)
	for i := 1; i <= n; i++ {
		out[i] = out[i-1].Mul(m)
	}
	return out
}

func TestPowerCacheMatchesPow(t *testing.T) {
	rng := rand.New(rand.NewPCG(13, 14))
	m := randomDense(5, 5, rng)
	want := seqPowers(m, 9)
	pc := NewPowerCache(m)
	for _, n := range []int{4, 1, 7, 0, 2, 7} {
		densesEqual(t, pc.Pow(n), want[n], "PowerCache.Pow")
	}
	if pc.Len() != 7 {
		t.Errorf("Len = %d, want 7", pc.Len())
	}
	pc.Grow(9)
	if pc.Len() != 9 {
		t.Errorf("after Grow(9) Len = %d", pc.Len())
	}
	densesEqual(t, pc.Pow(9), want[9], "after Grow")
}

// TestPowerCacheConcurrent hammers one cache from many goroutines; run
// with -race this validates the locking discipline.
func TestPowerCacheConcurrent(t *testing.T) {
	rng := rand.New(rand.NewPCG(15, 16))
	m := randomDense(3, 3, rng)
	pc := NewPowerCache(m)
	want := seqPowers(m, 32)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for it := 0; it < 50; it++ {
				n := 1 + (g*50+it)%32
				got := pc.Pow(n)
				for i := 0; i < 3; i++ {
					for j := 0; j < 3; j++ {
						// t.Error (not Fatal) — safe off the test goroutine.
						if got.At(i, j) != want[n].At(i, j) {
							t.Errorf("concurrent Pow(%d) mismatch at (%d,%d)", n, i, j)
							return
						}
					}
				}
			}
		}(g)
	}
	wg.Wait()
}

// TestMulIntoOverlapDetection: aliasing is rejected by backing-array
// extent, not just head pointer — offset views into one slab used to
// slip past a head-only check and silently corrupt the product.
func TestMulIntoOverlapDetection(t *testing.T) {
	slab := make([]float64, 12)
	for i := range slab {
		slab[i] = float64(i%3) + 0.5
	}
	a := &Dense{rows: 2, cols: 2, data: slab[0:4]}
	dst := &Dense{rows: 2, cols: 2, data: slab[2:6]} // overlaps a's tail
	b := randomDense(2, 2, rand.New(rand.NewPCG(17, 18)))
	for name, fn := range map[string]func(){
		"dst overlaps a": func() { MulInto(dst, a, b) },
		"dst overlaps b": func() { MulInto(dst, b, a) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: no panic", name)
				}
			}()
			fn()
		}()
	}
	// Disjoint views carved from one slab are exactly what PowerCache
	// growth produces; those must pass.
	c := &Dense{rows: 2, cols: 2, data: slab[4:8]}
	d := &Dense{rows: 2, cols: 2, data: slab[8:12]}
	MulInto(d, c, b)
	densesEqual(t, d, c.Mul(b), "disjoint slab views")
}

// TestPowZeroSharedIdentity: Pow(0) returns one shared read-only
// identity — the same instance every call, allocation-free once built.
func TestPowZeroSharedIdentity(t *testing.T) {
	pc := NewPowerCache(randomDense(4, 4, rand.New(rand.NewPCG(19, 20))))
	id := pc.Pow(0)
	densesEqual(t, id, Identity(4), "Pow(0)")
	if pc.Pow(0) != id {
		t.Error("Pow(0) returned a different instance on repeat")
	}
	if allocs := testing.AllocsPerRun(100, func() { _ = pc.Pow(0) }); allocs != 0 {
		t.Errorf("Pow(0) allocates %.1f objects per call after the first", allocs)
	}
}

// TestPowerCacheGrowPowInterleaved: concurrent Grow batches — both
// single-step T→T+1→T+2 and big jumps — racing with Pow readers. Any
// interleaving must publish powers bit-identical to sequential
// one-step growth (each power depends only on its predecessor, so
// batching cannot change the association order); -race validates the
// locking.
func TestPowerCacheGrowPowInterleaved(t *testing.T) {
	rng := rand.New(rand.NewPCG(21, 22))
	m := randomDense(3, 3, rng)
	const maxN = 40
	want := seqPowers(m, maxN)
	pc := NewPowerCache(m)
	var wg sync.WaitGroup
	for g := 0; g < 6; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for it := 0; it < 30; it++ {
				switch g % 3 {
				case 0: // single-step incremental growth
					n := 1 + it%(maxN-2)
					pc.Grow(n)
					pc.Grow(n + 1)
					pc.Grow(n + 2)
				case 1: // big-batch growth
					pc.Grow(1 + (g*30+it)%maxN)
				default: // reader
					n := 1 + (g*30+it)%maxN
					got := pc.Pow(n)
					for i := 0; i < 3; i++ {
						for j := 0; j < 3; j++ {
							if got.At(i, j) != want[n].At(i, j) {
								t.Errorf("interleaved Pow(%d) mismatch at (%d,%d)", n, i, j)
								return
							}
						}
					}
				}
			}
		}(g)
	}
	wg.Wait()
	for n := 1; n <= maxN; n++ {
		densesEqual(t, pc.Pow(n), want[n], "final powers")
	}
}

func TestGetScratchDims(t *testing.T) {
	d := GetScratch(3, 4)
	r, c := d.Dims()
	if r != 3 || c != 4 {
		t.Fatalf("GetScratch dims %d×%d", r, c)
	}
	PutScratch(d)
	// A second, larger request must resize cleanly even when the pool
	// hands back the smaller buffer.
	d2 := GetScratch(10, 10)
	r, c = d2.Dims()
	if r != 10 || c != 10 {
		t.Fatalf("GetScratch reuse dims %d×%d", r, c)
	}
	PutScratch(d2)
	PutScratch(nil) // must not panic
}
