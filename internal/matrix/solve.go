package matrix

import (
	"errors"
	"fmt"
	"math"
)

// ErrSingular is returned when a linear system has no unique solution
// at the working precision.
var ErrSingular = errors.New("matrix: singular matrix")

// Solve returns x with a·x = b, using Gauss–Jordan elimination with
// partial pivoting. a is not modified.
func Solve(a *Dense, b []float64) ([]float64, error) {
	if a.rows != a.cols {
		return nil, fmt.Errorf("matrix: Solve needs square matrix, got %d×%d", a.rows, a.cols)
	}
	if a.rows != len(b) {
		return nil, fmt.Errorf("matrix: Solve dimension mismatch %d×%d vs %d", a.rows, a.cols, len(b))
	}
	n := a.rows
	// Augmented working copy.
	w := a.Clone()
	x := make([]float64, n)
	copy(x, b)

	for col := 0; col < n; col++ {
		// Partial pivot.
		pivot := col
		best := math.Abs(w.At(col, col))
		for r := col + 1; r < n; r++ {
			if v := math.Abs(w.At(r, col)); v > best {
				best, pivot = v, r
			}
		}
		if best < 1e-14 {
			return nil, ErrSingular
		}
		if pivot != col {
			swapRows(w, pivot, col)
			x[pivot], x[col] = x[col], x[pivot]
		}
		// Normalize pivot row.
		pv := w.At(col, col)
		for j := col; j < n; j++ {
			w.Set(col, j, w.At(col, j)/pv)
		}
		x[col] /= pv
		// Eliminate.
		for r := 0; r < n; r++ {
			if r == col {
				continue
			}
			f := w.At(r, col)
			//privlint:allow floatcompare exact-zero pivot column entry needs no elimination
			if f == 0 {
				continue
			}
			for j := col; j < n; j++ {
				w.Set(r, j, w.At(r, j)-f*w.At(col, j))
			}
			x[r] -= f * x[col]
		}
	}
	return x, nil
}

// Inverse returns the inverse of a square matrix, or ErrSingular.
func Inverse(a *Dense) (*Dense, error) {
	if a.rows != a.cols {
		return nil, fmt.Errorf("matrix: Inverse needs square matrix, got %d×%d", a.rows, a.cols)
	}
	n := a.rows
	w := a.Clone()
	inv := Identity(n)
	for col := 0; col < n; col++ {
		pivot := col
		best := math.Abs(w.At(col, col))
		for r := col + 1; r < n; r++ {
			if v := math.Abs(w.At(r, col)); v > best {
				best, pivot = v, r
			}
		}
		if best < 1e-14 {
			return nil, ErrSingular
		}
		if pivot != col {
			swapRows(w, pivot, col)
			swapRows(inv, pivot, col)
		}
		pv := w.At(col, col)
		for j := 0; j < n; j++ {
			w.Set(col, j, w.At(col, j)/pv)
			inv.Set(col, j, inv.At(col, j)/pv)
		}
		for r := 0; r < n; r++ {
			if r == col {
				continue
			}
			f := w.At(r, col)
			//privlint:allow floatcompare exact-zero pivot column entry needs no elimination
			if f == 0 {
				continue
			}
			for j := 0; j < n; j++ {
				w.Set(r, j, w.At(r, j)-f*w.At(col, j))
				inv.Set(r, j, inv.At(r, j)-f*inv.At(col, j))
			}
		}
	}
	return inv, nil
}

func swapRows(m *Dense, a, b int) {
	ra := m.data[a*m.cols : (a+1)*m.cols]
	rb := m.data[b*m.cols : (b+1)*m.cols]
	for j := range ra {
		ra[j], rb[j] = rb[j], ra[j]
	}
}

// Tridiagonal describes a tridiagonal system with sub-diagonal a
// (a[0] unused), diagonal b, and super-diagonal c (c[n-1] unused).
// The GK16 baseline solves (I−Γ)x = 1 on systems as long as the chain
// (up to 10^6), where dense elimination is out of the question.
type Tridiagonal struct {
	Sub, Diag, Super []float64
}

// SolveTridiagonal solves t·x = d with the Thomas algorithm in O(n).
// It returns ErrSingular when a pivot vanishes. The Thomas algorithm
// is not pivoted; the diagonally-dominant systems produced by GK16
// (diag 1, off-diagonals summing below 1) are well within its domain.
func SolveTridiagonal(t Tridiagonal, d []float64) ([]float64, error) {
	n := len(t.Diag)
	if n == 0 || len(t.Sub) != n || len(t.Super) != n || len(d) != n {
		return nil, fmt.Errorf("matrix: tridiagonal dimension mismatch (n=%d sub=%d super=%d d=%d)",
			n, len(t.Sub), len(t.Super), len(d))
	}
	cp := make([]float64, n)
	dp := make([]float64, n)
	if math.Abs(t.Diag[0]) < 1e-14 {
		return nil, ErrSingular
	}
	cp[0] = t.Super[0] / t.Diag[0]
	dp[0] = d[0] / t.Diag[0]
	for i := 1; i < n; i++ {
		den := t.Diag[i] - t.Sub[i]*cp[i-1]
		if math.Abs(den) < 1e-14 {
			return nil, ErrSingular
		}
		cp[i] = t.Super[i] / den
		dp[i] = (d[i] - t.Sub[i]*dp[i-1]) / den
	}
	x := make([]float64, n)
	x[n-1] = dp[n-1]
	for i := n - 2; i >= 0; i-- {
		x[i] = dp[i] - cp[i]*x[i+1]
	}
	return x, nil
}
