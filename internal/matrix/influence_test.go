package matrix

import (
	"math"
	"math/rand/v2"
	"sync"
	"testing"

	"pufferfish/internal/sched"
)

// randomStochastic returns a k×k row-stochastic matrix; zeroFrac of the
// entries are planted zeros so the ±Inf/NaN conventions get exercised.
func randomStochastic(k int, zeroFrac float64, rng *rand.Rand) *Dense {
	m := NewDense(k, k)
	for i := 0; i < k; i++ {
		sum := 0.0
		for j := 0; j < k; j++ {
			v := 0.0
			// Keep at least one positive entry per row so it normalizes.
			if j == i || rng.Float64() >= zeroFrac {
				v = 0.05 + rng.Float64()
			}
			m.Set(i, j, v)
			sum += v
		}
		for j := 0; j < k; j++ {
			m.Set(i, j, m.At(i, j)/sum)
		}
	}
	return m
}

// refMaxLogRatio is the direct O(k³) kernel the cache replaces:
// max_y log(p/q) with the old conventions — p>0 over q=0 gives +Inf,
// p=0 contributes −Inf, and the `>` fold skips NaN.
func refMaxLogRatio(pj *Dense, forward bool) []float64 {
	k := pj.rows
	out := make([]float64, k*k)
	at := func(a, b int) float64 {
		if forward {
			return pj.At(a, b)
		}
		return pj.At(b, a)
	}
	for x := 0; x < k; x++ {
		for xp := 0; xp < k; xp++ {
			best := math.Inf(-1)
			for y := 0; y < k; y++ {
				p, q := at(x, y), at(xp, y)
				var v float64
				switch {
				case p == 0:
					v = math.Inf(-1)
				case q == 0:
					v = math.Inf(1)
				default:
					v = math.Log(p / q)
				}
				if v > best {
					best = v
				}
			}
			out[x*k+xp] = best
		}
	}
	return out
}

// TestInfluenceTablesMatchReference: the log-table kernel agrees with
// the direct log(p/q) kernel exactly on every ±Inf entry and to a few
// ulps on finite ones, including matrices with planted zeros.
func TestInfluenceTablesMatchReference(t *testing.T) {
	rng := rand.New(rand.NewPCG(21, 22))
	for _, zeroFrac := range []float64{0, 0.4} {
		m := randomStochastic(5, zeroFrac, rng)
		ic := NewInfluenceCache(NewPowerCache(m))
		ic.Grow(6, sched.New(1))
		for j := 1; j <= 6; j++ {
			pj := ic.Base().Pow(j)
			for _, side := range []struct {
				name string
				got  []float64
				fwd  bool
			}{
				{"fwd", ic.Fwd(j), true},
				{"bwd", ic.Bwd(j), false},
			} {
				want := refMaxLogRatio(pj, side.fwd)
				for i, w := range want {
					g := side.got[i]
					if math.IsInf(w, 0) || math.IsInf(g, 0) {
						if g != w {
							t.Fatalf("zeroFrac=%g %s(%d)[%d] = %v, want %v exactly", zeroFrac, side.name, j, i, g, w)
						}
						continue
					}
					if math.Abs(g-w) > 1e-12 {
						t.Fatalf("zeroFrac=%g %s(%d)[%d] = %v, want %v (diff %g)", zeroFrac, side.name, j, i, g, w, g-w)
					}
				}
			}
		}
	}
}

// TestInfluenceArgmax: the recorded argmax is an off-diagonal index
// whose entry equals the row's off-diagonal maximum (the scorer uses
// it as an O(1) influence lower bound, so it must never overstate).
func TestInfluenceArgmax(t *testing.T) {
	rng := rand.New(rand.NewPCG(23, 24))
	m := randomStochastic(6, 0.3, rng)
	ic := NewInfluenceCache(NewPowerCache(m))
	ic.Grow(5, sched.New(1))
	fwd, bwd, fwdArg, bwdArg := ic.Tables(5)
	check := func(name string, row []float64, arg int32) {
		k := 6
		x, xp := int(arg)/k, int(arg)%k
		if x == xp {
			t.Fatalf("%s argmax %d is diagonal", name, arg)
		}
		best := math.Inf(-1)
		for i, v := range row {
			if i/k != i%k && v > best {
				best = v
			}
		}
		if row[arg] != best {
			t.Fatalf("%s argmax entry %v, row max %v", name, row[arg], best)
		}
	}
	for j := 0; j < 5; j++ {
		check("fwd", fwd[j], fwdArg[j])
		check("bwd", bwd[j], bwdArg[j])
	}
}

// TestInfluenceCacheIncrementalBitIdentical: growing 1→2→…→n one power
// at a time yields rows bit-identical to one Grow(n) — the contract
// that makes incremental per-length scoring safe to share.
func TestInfluenceCacheIncrementalBitIdentical(t *testing.T) {
	rng := rand.New(rand.NewPCG(25, 26))
	m := randomStochastic(4, 0.25, rng)
	const n = 8

	oneShot := NewInfluenceCache(NewPowerCache(m))
	oneShot.Grow(n, sched.New(0))
	stepped := NewInfluenceCache(NewPowerCache(m))
	for j := 1; j <= n; j++ {
		stepped.Grow(j, sched.New(1))
	}

	of, ob, ofa, oba := oneShot.Tables(n)
	sf, sb, sfa, sba := stepped.Tables(n)
	for j := 0; j < n; j++ {
		for i := range of[j] {
			if of[j][i] != sf[j][i] || ob[j][i] != sb[j][i] {
				t.Fatalf("power %d entry %d differs between one-shot and stepped growth", j+1, i)
			}
		}
		if ofa[j] != sfa[j] || oba[j] != sba[j] {
			t.Fatalf("power %d argmax differs between one-shot and stepped growth", j+1)
		}
	}
}

// TestInfluenceCacheConcurrentGrow hammers one cache with interleaved
// Grow and read traffic; under -race this validates the locking, and
// every read must see rows identical to a serially built reference.
func TestInfluenceCacheConcurrentGrow(t *testing.T) {
	rng := rand.New(rand.NewPCG(27, 28))
	m := randomStochastic(3, 0.2, rng)
	const maxN = 24

	ref := NewInfluenceCache(NewPowerCache(m))
	ref.Grow(maxN, sched.New(1))
	refFwd, refBwd, _, _ := ref.Tables(maxN)

	ic := NewInfluenceCache(NewPowerCache(m))
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for it := 0; it < 40; it++ {
				n := 1 + (g*40+it)%maxN
				if g%2 == 0 {
					ic.Grow(n, sched.New(1))
					fwd, bwd, _, _ := ic.Tables(n)
					for i, v := range fwd[n-1] {
						if v != refFwd[n-1][i] || bwd[n-1][i] != refBwd[n-1][i] {
							t.Errorf("concurrent Grow(%d): row differs from reference", n)
							return
						}
					}
				} else {
					row := ic.Bwd(n)
					for i, v := range row {
						if v != refBwd[n-1][i] {
							t.Errorf("concurrent Bwd(%d)[%d] differs from reference", n, i)
							return
						}
					}
				}
			}
		}(g)
	}
	wg.Wait()
	if ic.Len() != maxN {
		t.Errorf("Len = %d after concurrent growth to %d", ic.Len(), maxN)
	}
}
