// Package matrix implements the small dense linear-algebra kernel the
// reproduction needs: row-major float64 matrices with multiplication,
// powers, Gauss–Jordan inversion/solving, a tridiagonal (Thomas)
// solver, and the matrix norms used by the GK16 baseline and the
// Markov-chain analysis.
//
// The matrices involved are tiny (state spaces up to ~51) except for
// the tridiagonal systems in GK16, which may span the chain length
// (up to 10^6) and therefore get a dedicated O(T) solver.
package matrix

import (
	"fmt"
	"math"
	"strings"
)

// Dense is a row-major dense matrix.
type Dense struct {
	rows, cols int
	data       []float64
}

// NewDense returns a zeroed rows×cols matrix. It panics if either
// dimension is not positive.
func NewDense(rows, cols int) *Dense {
	if rows <= 0 || cols <= 0 {
		panic(fmt.Sprintf("matrix: invalid dimensions %d×%d", rows, cols))
	}
	return &Dense{rows: rows, cols: cols, data: make([]float64, rows*cols)}
}

// FromRows builds a matrix from a slice of equal-length rows.
func FromRows(rows [][]float64) *Dense {
	if len(rows) == 0 || len(rows[0]) == 0 {
		panic("matrix: FromRows needs at least one non-empty row")
	}
	m := NewDense(len(rows), len(rows[0]))
	for i, r := range rows {
		if len(r) != m.cols {
			panic(fmt.Sprintf("matrix: ragged row %d: %d != %d", i, len(r), m.cols))
		}
		copy(m.data[i*m.cols:(i+1)*m.cols], r)
	}
	return m
}

// Identity returns the n×n identity matrix.
func Identity(n int) *Dense {
	m := NewDense(n, n)
	for i := 0; i < n; i++ {
		m.Set(i, i, 1)
	}
	return m
}

// Dims returns the matrix dimensions.
func (m *Dense) Dims() (rows, cols int) { return m.rows, m.cols }

// At returns element (i, j).
func (m *Dense) At(i, j int) float64 { return m.data[i*m.cols+j] }

// Set assigns element (i, j).
func (m *Dense) Set(i, j int, v float64) { m.data[i*m.cols+j] = v }

// Row returns a copy of row i.
func (m *Dense) Row(i int) []float64 {
	out := make([]float64, m.cols)
	copy(out, m.data[i*m.cols:(i+1)*m.cols])
	return out
}

// RawRow returns row i without copying; callers must not grow it.
func (m *Dense) RawRow(i int) []float64 {
	return m.data[i*m.cols : (i+1)*m.cols]
}

// Col returns a copy of column j.
func (m *Dense) Col(j int) []float64 {
	out := make([]float64, m.rows)
	for i := range out {
		out[i] = m.At(i, j)
	}
	return out
}

// Equal reports whether b has the same dimensions and exactly equal
// (==) elements. Used to verify power-cache sharing candidates, so a
// fingerprint collision can never alias two different matrices.
func (m *Dense) Equal(b *Dense) bool {
	if m.rows != b.rows || m.cols != b.cols {
		return false
	}
	for i, v := range m.data {
		//privlint:allow floatcompare Equal is the bit-identity comparator golden tests rely on
		if v != b.data[i] {
			return false
		}
	}
	return true
}

// Clone returns a deep copy.
func (m *Dense) Clone() *Dense {
	out := NewDense(m.rows, m.cols)
	copy(out.data, m.data)
	return out
}

// T returns the transpose as a new matrix.
func (m *Dense) T() *Dense {
	out := NewDense(m.cols, m.rows)
	for i := 0; i < m.rows; i++ {
		for j := 0; j < m.cols; j++ {
			out.Set(j, i, m.At(i, j))
		}
	}
	return out
}

// Mul returns the product m·b.
func (m *Dense) Mul(b *Dense) *Dense {
	if m.cols != b.rows {
		panic(fmt.Sprintf("matrix: Mul dimension mismatch %d×%d · %d×%d", m.rows, m.cols, b.rows, b.cols))
	}
	out := NewDense(m.rows, b.cols)
	for i := 0; i < m.rows; i++ {
		mrow := m.data[i*m.cols : (i+1)*m.cols]
		orow := out.data[i*b.cols : (i+1)*b.cols]
		for k, mik := range mrow {
			//privlint:allow floatcompare structural-zero sparsity skip
			if mik == 0 {
				continue
			}
			brow := b.data[k*b.cols : (k+1)*b.cols]
			for j, bkj := range brow {
				orow[j] += mik * bkj
			}
		}
	}
	return out
}

// MulVec returns m·x as a new vector.
func (m *Dense) MulVec(x []float64) []float64 {
	if m.cols != len(x) {
		panic(fmt.Sprintf("matrix: MulVec dimension mismatch %d×%d · %d", m.rows, m.cols, len(x)))
	}
	out := make([]float64, m.rows)
	for i := 0; i < m.rows; i++ {
		row := m.data[i*m.cols : (i+1)*m.cols]
		var s float64
		for j, v := range row {
			s += v * x[j]
		}
		out[i] = s
	}
	return out
}

// VecMul returns xᵀ·m (a row vector times the matrix) as a new vector.
// This is the natural operation for propagating a Markov-chain
// distribution one step.
func (m *Dense) VecMul(x []float64) []float64 {
	if m.rows != len(x) {
		panic(fmt.Sprintf("matrix: VecMul dimension mismatch %d · %d×%d", len(x), m.rows, m.cols))
	}
	out := make([]float64, m.cols)
	for i, xi := range x {
		//privlint:allow floatcompare structural-zero sparsity skip
		if xi == 0 {
			continue
		}
		row := m.data[i*m.cols : (i+1)*m.cols]
		for j, v := range row {
			out[j] += xi * v
		}
	}
	return out
}

// Add returns m + b.
func (m *Dense) Add(b *Dense) *Dense {
	m.sameDims(b, "Add")
	out := m.Clone()
	for i := range out.data {
		out.data[i] += b.data[i]
	}
	return out
}

// Sub returns m − b.
func (m *Dense) Sub(b *Dense) *Dense {
	m.sameDims(b, "Sub")
	out := m.Clone()
	for i := range out.data {
		out.data[i] -= b.data[i]
	}
	return out
}

// Scale returns c·m.
func (m *Dense) Scale(c float64) *Dense {
	out := m.Clone()
	for i := range out.data {
		out.data[i] *= c
	}
	return out
}

func (m *Dense) sameDims(b *Dense, op string) {
	if m.rows != b.rows || m.cols != b.cols {
		panic(fmt.Sprintf("matrix: %s dimension mismatch %d×%d vs %d×%d", op, m.rows, m.cols, b.rows, b.cols))
	}
}

// Pow returns m^n for a square matrix and n ≥ 0, using binary
// exponentiation over pooled scratch buffers (three fixed allocations
// regardless of n). Pow(0) is the identity.
func (m *Dense) Pow(n int) *Dense {
	if m.rows != m.cols {
		panic("matrix: Pow of non-square matrix")
	}
	if n < 0 {
		panic("matrix: Pow with negative exponent")
	}
	k := m.rows
	result := Identity(k)
	if n == 0 {
		return result
	}
	base := GetScratch(k, k)
	base.CopyFrom(m)
	tmp := GetScratch(k, k)
	for n > 0 {
		if n&1 == 1 {
			MulInto(tmp, result, base)
			result, tmp = tmp, result
		}
		n >>= 1
		if n > 0 {
			MulInto(tmp, base, base)
			base, tmp = tmp, base
		}
	}
	// result, base, tmp are three distinct matrices (swaps only permute
	// them), so all three can be pooled once the result is copied out.
	out := result.Clone()
	PutScratch(result)
	PutScratch(base)
	PutScratch(tmp)
	return out
}

// MaxAbs returns the largest absolute entry.
func (m *Dense) MaxAbs() float64 {
	var mx float64
	for _, v := range m.data {
		if a := math.Abs(v); a > mx {
			mx = a
		}
	}
	return mx
}

// Norm1 returns the maximum absolute column sum.
func (m *Dense) Norm1() float64 {
	var mx float64
	for j := 0; j < m.cols; j++ {
		var s float64
		for i := 0; i < m.rows; i++ {
			s += math.Abs(m.At(i, j))
		}
		if s > mx {
			mx = s
		}
	}
	return mx
}

// NormInf returns the maximum absolute row sum.
func (m *Dense) NormInf() float64 {
	var mx float64
	for i := 0; i < m.rows; i++ {
		var s float64
		for _, v := range m.data[i*m.cols : (i+1)*m.cols] {
			s += math.Abs(v)
		}
		if s > mx {
			mx = s
		}
	}
	return mx
}

// NormFrob returns the Frobenius norm.
func (m *Dense) NormFrob() float64 {
	var s float64
	for _, v := range m.data {
		s += v * v
	}
	return math.Sqrt(s)
}

// IsSymmetric reports whether the matrix is square and symmetric
// within tol.
func (m *Dense) IsSymmetric(tol float64) bool {
	if m.rows != m.cols {
		return false
	}
	for i := 0; i < m.rows; i++ {
		for j := i + 1; j < m.cols; j++ {
			if math.Abs(m.At(i, j)-m.At(j, i)) > tol {
				return false
			}
		}
	}
	return true
}

// String renders the matrix for debugging.
func (m *Dense) String() string {
	var b strings.Builder
	for i := 0; i < m.rows; i++ {
		for j := 0; j < m.cols; j++ {
			if j > 0 {
				b.WriteByte(' ')
			}
			fmt.Fprintf(&b, "%.6g", m.At(i, j))
		}
		b.WriteByte('\n')
	}
	return b.String()
}
