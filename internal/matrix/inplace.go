package matrix

// This file holds the destination-taking kernels and pooled scratch
// matrices. The scoring engine's hot loops (quilt sweeps, marginal
// propagation, power tables) run thousands of small multiplies; the
// -Into variants let callers reuse buffers so the steady state
// allocates nothing.

import (
	"fmt"
	"sync"
	"unsafe"
)

// MulInto computes dst = a·b in place. dst must have dimensions
// a.rows×b.cols and must not alias a or b (the product reads its
// operands while writing dst). Above blockedMinDim in every dimension
// it takes the register-blocked kernel (see blocked.go); the result is
// bit-for-bit identical on both paths (same per-element summation
// order).
func MulInto(dst, a, b *Dense) *Dense {
	if a.cols != b.rows {
		panic(fmt.Sprintf("matrix: MulInto dimension mismatch %d×%d · %d×%d", a.rows, a.cols, b.rows, b.cols))
	}
	if dst.rows != a.rows || dst.cols != b.cols {
		panic(fmt.Sprintf("matrix: MulInto destination is %d×%d, want %d×%d", dst.rows, dst.cols, a.rows, b.cols))
	}
	if overlaps(dst, a) || overlaps(dst, b) {
		panic("matrix: MulInto destination aliases an operand")
	}
	if a.rows >= blockedMinDim && a.cols >= blockedMinDim && b.cols >= blockedMinDim {
		mulBlockedInto(dst, a, b)
		return dst
	}
	for i := range dst.data {
		dst.data[i] = 0
	}
	for i := 0; i < a.rows; i++ {
		arow := a.data[i*a.cols : (i+1)*a.cols]
		drow := dst.data[i*b.cols : (i+1)*b.cols]
		for k, aik := range arow {
			//privlint:allow floatcompare structural-zero sparsity skip
			if aik == 0 {
				continue
			}
			brow := b.data[k*b.cols : (k+1)*b.cols]
			for j, bkj := range brow {
				drow[j] += aik * bkj
			}
		}
	}
	return dst
}

// MulVecInto computes dst = m·x in place and returns dst. dst must have
// length m.rows and must not alias x.
func (m *Dense) MulVecInto(dst, x []float64) []float64 {
	if m.cols != len(x) {
		panic(fmt.Sprintf("matrix: MulVecInto dimension mismatch %d×%d · %d", m.rows, m.cols, len(x)))
	}
	if len(dst) != m.rows {
		panic(fmt.Sprintf("matrix: MulVecInto destination has length %d, want %d", len(dst), m.rows))
	}
	for i := 0; i < m.rows; i++ {
		row := m.data[i*m.cols : (i+1)*m.cols]
		var s float64
		for j, v := range row {
			s += v * x[j]
		}
		dst[i] = s
	}
	return dst
}

// VecMulInto computes dst = xᵀ·m in place and returns dst — one
// Markov-chain distribution step without allocating. dst must have
// length m.cols and must not alias x.
func (m *Dense) VecMulInto(dst, x []float64) []float64 {
	if m.rows != len(x) {
		panic(fmt.Sprintf("matrix: VecMulInto dimension mismatch %d · %d×%d", len(x), m.rows, m.cols))
	}
	if len(dst) != m.cols {
		panic(fmt.Sprintf("matrix: VecMulInto destination has length %d, want %d", len(dst), m.cols))
	}
	for j := range dst {
		dst[j] = 0
	}
	for i, xi := range x {
		//privlint:allow floatcompare structural-zero sparsity skip
		if xi == 0 {
			continue
		}
		row := m.data[i*m.cols : (i+1)*m.cols]
		for j, v := range row {
			dst[j] += xi * v
		}
	}
	return dst
}

// CopyFrom copies src's elements into m (dimensions must match).
func (m *Dense) CopyFrom(src *Dense) {
	m.sameDims(src, "CopyFrom")
	copy(m.data, src.data)
}

// overlaps reports whether the two matrices' element storage shares any
// backing-array cells. Comparing only the heads (&a.data[0]) would miss
// matrices carved out of one slab at different offsets — e.g. a
// destination view starting inside an operand's range — so the check
// compares the full [start, start+len) extents. Pointers are compared
// as uintptrs only (never dereferenced through), which is valid here
// because both slices are live for the duration of the call.
func overlaps(a, b *Dense) bool {
	if len(a.data) == 0 || len(b.data) == 0 {
		return false
	}
	const sz = unsafe.Sizeof(float64(0))
	as := uintptr(unsafe.Pointer(unsafe.SliceData(a.data)))
	ae := as + uintptr(len(a.data))*sz
	bs := uintptr(unsafe.Pointer(unsafe.SliceData(b.data)))
	be := bs + uintptr(len(b.data))*sz
	return as < be && bs < ae
}

// scratchPool recycles Dense values across Pow calls and other
// temporaries. Entries keep their backing arrays, so a steady-state
// workload stops allocating once the pool is warm.
var scratchPool = sync.Pool{New: func() any { return &Dense{} }}

// GetScratch returns a pooled rows×cols matrix with unspecified
// contents. Release it with PutScratch when done.
func GetScratch(rows, cols int) *Dense {
	d := scratchPool.Get().(*Dense)
	n := rows * cols
	if cap(d.data) < n {
		d.data = make([]float64, n)
	}
	d.data = d.data[:n]
	d.rows, d.cols = rows, cols
	return d
}

// PutScratch returns a matrix obtained from GetScratch to the pool.
// The caller must not use it afterwards.
func PutScratch(d *Dense) {
	if d != nil {
		scratchPool.Put(d)
	}
}
