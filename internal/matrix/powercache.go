package matrix

import (
	"fmt"
	"sync"
	"sync/atomic"
)

// PowerCache memoizes the consecutive powers P, P², …, Pⁿ of a square
// matrix. The quilt decomposition of Lemma 4.6 evaluates transition
// kernels at every quilt distance up to ℓ for every protected node;
// sharing one cache makes the whole sweep O(ℓk³) in matrix work and —
// because entries are carved out of slab allocations — O(1) in
// allocations per power.
//
// The cache is safe for concurrent use: readers take a shared lock and
// the extension path an exclusive one. Callers that know the maximum
// power in advance should Grow first so that the parallel phase is
// read-only.
type PowerCache struct {
	mu     sync.RWMutex
	p      *Dense
	powers []*Dense // powers[i] = P^(i+1), views into slabs
	// id is the lazily built P⁰ = I, shared across Pow(0) calls (it is
	// the same for every power table of dimension k, but a per-cache
	// copy keeps the cache self-contained). Read-only once published.
	id atomic.Pointer[Dense]
}

// NewPowerCache returns an empty cache for the square matrix p.
func NewPowerCache(p *Dense) *PowerCache {
	if p.rows != p.cols {
		panic(fmt.Sprintf("matrix: PowerCache of non-square %d×%d matrix", p.rows, p.cols))
	}
	return &PowerCache{p: p}
}

// Base returns the cached matrix P.
func (pc *PowerCache) Base() *Dense { return pc.p }

// Grow extends the cache to hold P^1 … P^n. All new entries share one
// backing slab, so growing by m powers costs O(1+m·k²) memory in two
// allocations regardless of m.
func (pc *PowerCache) Grow(n int) {
	if n < 1 {
		return
	}
	pc.mu.Lock()
	pc.growLocked(n)
	pc.mu.Unlock()
}

func (pc *PowerCache) growLocked(n int) {
	have := len(pc.powers)
	if have >= n {
		return
	}
	k := pc.p.rows
	slab := make([]float64, (n-have)*k*k)
	headers := make([]Dense, n-have)
	if cap(pc.powers) < n {
		grown := make([]*Dense, have, n)
		copy(grown, pc.powers)
		pc.powers = grown
	}
	for j := have; j < n; j++ {
		entry := &headers[j-have]
		*entry = Dense{rows: k, cols: k, data: slab[(j-have)*k*k : (j-have+1)*k*k]}
		if j == 0 {
			entry.CopyFrom(pc.p)
		} else {
			MulInto(entry, pc.powers[j-1], pc.p)
		}
		pc.powers = append(pc.powers, entry)
	}
}

// Pow returns P^n for n ≥ 0, extending the cache as needed. The
// returned matrix is shared — callers must not modify it.
func (pc *PowerCache) Pow(n int) *Dense {
	if n < 0 {
		panic("matrix: PowerCache negative power")
	}
	if n == 0 {
		// One shared read-only identity per cache instead of a fresh
		// Identity(k) allocation on every call.
		if id := pc.id.Load(); id != nil {
			return id
		}
		id := Identity(pc.p.rows)
		// A concurrent caller may have published first; either value is
		// identical, so keep whichever won.
		pc.id.CompareAndSwap(nil, id)
		return pc.id.Load()
	}
	pc.mu.RLock()
	if n <= len(pc.powers) {
		out := pc.powers[n-1]
		pc.mu.RUnlock()
		return out
	}
	pc.mu.RUnlock()
	pc.mu.Lock()
	pc.growLocked(n)
	out := pc.powers[n-1]
	pc.mu.Unlock()
	return out
}

// Len returns the number of cached powers.
func (pc *PowerCache) Len() int {
	pc.mu.RLock()
	defer pc.mu.RUnlock()
	return len(pc.powers)
}
