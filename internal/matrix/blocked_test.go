package matrix

import (
	"math/rand/v2"
	"testing"
)

// mulReference is the plain triple loop with the naive path's
// increasing-k summation order and zero-skip — the semantics both
// MulInto paths must reproduce bit-for-bit.
func mulReference(a, b *Dense) *Dense {
	out := NewDense(a.rows, b.cols)
	for i := 0; i < a.rows; i++ {
		for j := 0; j < b.cols; j++ {
			var s float64
			for k := 0; k < a.cols; k++ {
				if a.At(i, k) == 0 {
					continue
				}
				s += a.At(i, k) * b.At(k, j)
			}
			out.Set(i, j, s)
		}
	}
	return out
}

func randDense(rows, cols int, rng *rand.Rand, sparsity float64) *Dense {
	m := NewDense(rows, cols)
	for i := range m.data {
		if rng.Float64() < sparsity {
			continue // leave an exact zero to exercise the skip semantics
		}
		m.data[i] = rng.NormFloat64()
	}
	return m
}

func randStochastic(k int, rng *rand.Rand) *Dense {
	m := NewDense(k, k)
	for i := 0; i < k; i++ {
		var tot float64
		row := m.RawRow(i)
		for j := range row {
			row[j] = rng.Float64() + 1e-3
			tot += row[j]
		}
		for j := range row {
			row[j] /= tot
		}
	}
	return m
}

// TestMulIntoBlockedBitIdentical pins the bit-compatibility contract:
// the blocked kernel must produce exactly the reference result on
// finite inputs, across square and rectangular shapes, remainder rows
// and columns, and sparse operands.
func TestMulIntoBlockedBitIdentical(t *testing.T) {
	rng := rand.New(rand.NewPCG(7, 11))
	shapes := []struct{ m, k, n int }{
		{8, 8, 8},    // smallest blocked case
		{9, 10, 11},  // remainders in every dimension
		{12, 8, 13},  // column remainder only
		{13, 9, 12},  // row remainder only
		{51, 51, 51}, // the electricity chain size
		{64, 64, 64},
		{16, 33, 9},
	}
	for _, sh := range shapes {
		for _, sparsity := range []float64{0, 0.3, 0.9} {
			a := randDense(sh.m, sh.k, rng, sparsity)
			b := randDense(sh.k, sh.n, rng, sparsity)
			want := mulReference(a, b)
			got := NewDense(sh.m, sh.n)
			MulInto(got, a, b)
			for i := range want.data {
				if got.data[i] != want.data[i] {
					t.Fatalf("%dx%dx%d sparsity %.1f: element %d = %v, want %v (not bit-identical)",
						sh.m, sh.k, sh.n, sparsity, i, got.data[i], want.data[i])
				}
			}
		}
	}
}

// TestMulIntoSmallStaysNaive checks the sub-threshold path still
// matches the reference (and in particular that dispatching did not
// change small-matrix behavior).
func TestMulIntoSmallStaysNaive(t *testing.T) {
	rng := rand.New(rand.NewPCG(3, 5))
	for _, sh := range []struct{ m, k, n int }{{2, 2, 2}, {4, 7, 3}, {7, 7, 7}, {8, 7, 8}} {
		a := randDense(sh.m, sh.k, rng, 0.2)
		b := randDense(sh.k, sh.n, rng, 0.2)
		want := mulReference(a, b)
		got := NewDense(sh.m, sh.n)
		MulInto(got, a, b)
		for i := range want.data {
			if got.data[i] != want.data[i] {
				t.Fatalf("%dx%dx%d: element %d = %v, want %v", sh.m, sh.k, sh.n, i, got.data[i], want.data[i])
			}
		}
	}
}

// TestPowerCacheBlockedConsistency checks that power tables built
// through the blocked kernel agree bit-for-bit with serial naive
// squaring on a stochastic matrix at the electricity chain size.
func TestPowerCacheBlockedConsistency(t *testing.T) {
	rng := rand.New(rand.NewPCG(13, 17))
	p := randStochastic(51, rng)
	pc := NewPowerCache(p)
	pc.Grow(8)
	want := p.Clone()
	for n := 1; n <= 8; n++ {
		got := pc.Pow(n)
		for i := range want.data {
			if got.data[i] != want.data[i] {
				t.Fatalf("P^%d element %d = %v, want %v", n, i, got.data[i], want.data[i])
			}
		}
		if n < 8 {
			next := NewDense(51, 51)
			mulBlockedInto(next, want, p) // same kernel the cache uses at this size
			want = next
		}
	}
}

func benchMul(b *testing.B, k int) {
	rng := rand.New(rand.NewPCG(1, 2))
	x := randStochastic(k, rng)
	y := randStochastic(k, rng)
	dst := NewDense(k, k)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MulInto(dst, x, y)
	}
}

func BenchmarkMulInto8(b *testing.B)  { benchMul(b, 8) }
func BenchmarkMulInto51(b *testing.B) { benchMul(b, 51) }
func BenchmarkMulInto64(b *testing.B) { benchMul(b, 64) }

// BenchmarkMulIntoNaive51 is the ablation: the axpy loop at the size
// the blocked kernel now handles.
func BenchmarkMulIntoNaive51(b *testing.B) {
	rng := rand.New(rand.NewPCG(1, 2))
	x := randStochastic(51, rng)
	y := randStochastic(51, rng)
	dst := NewDense(51, 51)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j := range dst.data {
			dst.data[j] = 0
		}
		for r := 0; r < 51; r++ {
			arow := x.data[r*51 : (r+1)*51]
			drow := dst.data[r*51 : (r+1)*51]
			for k, aik := range arow {
				if aik == 0 {
					continue
				}
				brow := y.data[k*51 : (k+1)*51]
				for jj, bkj := range brow {
					drow[jj] += aik * bkj
				}
			}
		}
	}
}
