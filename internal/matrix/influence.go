package matrix

import (
	"math"
	"sync"

	"pufferfish/internal/sched"
)

// InfluenceCache memoizes, per power j of one PowerCache's matrix, the
// max-log-ratio tables at the heart of the MQM exact scorer
// (Section 4.4.1 of the paper):
//
//	Fwd(j)[x*k+x′] = max_y log Pʲ(x,y) − log Pʲ(x′,y)
//	Bwd(j)[x*k+x′] = max_y log Pʲ(y,x) − log Pʲ(y,x′)
//
// The direct evaluation costs one math.Log per (x, x′, y) triple —
// O(k³) transcendentals per power. This cache instead takes the
// element-wise log of Pʲ once (k² transcendentals) into a row-major
// table plus a transposed copy for the column-oriented Bwd sweep, and
// reduces each (x, x′) entry as a stride-1 subtract-max over two
// contiguous rows — pure FLOPs. log(p) − log(q) differs from log(p/q)
// by a couple of ulps; internal/core/mqmexact.go documents the error
// bound the scorer's accuracy tests pin.
//
// Zero probabilities keep the scorer's conventions without branches:
// log(0) is −Inf, so p>0,q=0 gives +Inf, p=0 gives −Inf or (−Inf)−(−Inf)
// = NaN — and since the sweep folds with `if d > best`, NaN and −Inf
// never win a max, exactly as the old logRatio-based kernel behaved.
//
// Rows live in grow-sized slabs like PowerCache powers and are built
// incrementally: growing from T to T+1 powers computes only the new
// row's k² entries, which is what makes scoring a chain of length T+1
// after T nearly free. Alongside each row the cache records the flat
// index of the row's maximum entry (diagonal excluded); the scorer uses
// these as O(1) influence lower bounds to prune dominated quilts.
//
// Safe for concurrent use: readers take a shared lock, Grow an
// exclusive one. Rows are immutable once published, and their content
// is bit-for-bit independent of how growth was batched (each row
// depends only on Pʲ, and PowerCache builds powers by the same
// sequential recurrence regardless of batching).
type InfluenceCache struct {
	mu             sync.RWMutex
	pc             *PowerCache
	fwd, bwd       [][]float64 // index j−1, each k·k, views into slabs
	fwdArg, bwdArg []int32     // index j−1: flat argmax of the row (off-diagonal)
}

// NewInfluenceCache returns an empty cache over pc's matrix powers.
func NewInfluenceCache(pc *PowerCache) *InfluenceCache {
	return &InfluenceCache{pc: pc}
}

// Base returns the underlying power cache.
func (ic *InfluenceCache) Base() *PowerCache { return ic.pc }

// Len returns the number of cached power rows.
func (ic *InfluenceCache) Len() int {
	ic.mu.RLock()
	defer ic.mu.RUnlock()
	return len(ic.fwd)
}

// Grow extends the cache to cover powers 1…n, fanning the per-power row
// builds across the pool (each row writes a disjoint slab range). The
// underlying PowerCache is grown first, so workers only take its read
// path.
func (ic *InfluenceCache) Grow(n int, pool sched.Pool) {
	if n < 1 {
		return
	}
	ic.mu.RLock()
	have := len(ic.fwd)
	ic.mu.RUnlock()
	if have >= n {
		return
	}
	ic.pc.Grow(n)
	ic.mu.Lock()
	defer ic.mu.Unlock()
	have = len(ic.fwd)
	if have >= n {
		return
	}
	k := ic.pc.p.rows
	kk := k * k
	slab := make([]float64, 2*(n-have)*kk)
	for j := have; j < n; j++ {
		off := 2 * (j - have) * kk
		ic.fwd = append(ic.fwd, slab[off:off+kk])
		ic.bwd = append(ic.bwd, slab[off+kk:off+2*kk])
	}
	ic.fwdArg = append(ic.fwdArg, make([]int32, n-have)...)
	ic.bwdArg = append(ic.bwdArg, make([]int32, n-have)...)
	pool.ForEach(n-have, func(d int) {
		j := have + d + 1
		fa, ba := buildInfluenceRow(ic.pc.Pow(j), ic.fwd[j-1], ic.bwd[j-1])
		ic.fwdArg[j-1] = fa
		ic.bwdArg[j-1] = ba
	})
}

// Tables returns views of the first n cached rows (and their argmax
// indices); the caller must have Grown to at least n. The returned
// slices are stable snapshots — rows are immutable and later growth
// never touches the returned headers — and must not be modified.
func (ic *InfluenceCache) Tables(n int) (fwd, bwd [][]float64, fwdArg, bwdArg []int32) {
	ic.mu.RLock()
	defer ic.mu.RUnlock()
	return ic.fwd[:n:n], ic.bwd[:n:n], ic.fwdArg[:n:n], ic.bwdArg[:n:n]
}

// Fwd returns the forward max-log-ratio row for power j ≥ 1, growing
// serially as needed.
func (ic *InfluenceCache) Fwd(j int) []float64 {
	ic.Grow(j, sched.New(1))
	ic.mu.RLock()
	defer ic.mu.RUnlock()
	return ic.fwd[j-1]
}

// Bwd returns the backward max-log-ratio row for power j ≥ 1, growing
// serially as needed.
func (ic *InfluenceCache) Bwd(j int) []float64 {
	ic.Grow(j, sched.New(1))
	ic.mu.RLock()
	defer ic.mu.RUnlock()
	return ic.bwd[j-1]
}

// buildInfluenceRow fills f and b (each k·k) with the max-log-ratio
// tables of the single power pj and returns the off-diagonal argmax of
// each. Scratch log tables come from the matrix pool, so steady-state
// growth allocates nothing beyond the row slabs.
func buildInfluenceRow(pj *Dense, f, b []float64) (fArg, bArg int32) {
	k := pj.rows
	lg := GetScratch(k, k)  // lg[x][y]  = log Pʲ(x,y)
	lgT := GetScratch(k, k) // lgT[x][y] = log Pʲ(y,x)
	for x := 0; x < k; x++ {
		src := pj.data[x*k : (x+1)*k]
		dst := lg.data[x*k : (x+1)*k]
		for y, v := range src {
			if v > 0 {
				dst[y] = math.Log(v)
			} else {
				dst[y] = math.Inf(-1)
			}
		}
	}
	for x := 0; x < k; x++ {
		row := lg.data[x*k : (x+1)*k]
		for y, v := range row {
			lgT.data[y*k+x] = v
		}
	}
	fArg = maxRatioRow(lg.data, f, k)
	bArg = maxRatioRow(lgT.data, b, k)
	PutScratch(lg)
	PutScratch(lgT)
	return fArg, bArg
}

// maxRatioRow computes out[x*k+x′] = max_y lg[x*k+y] − lg[x′*k+y] for
// every ordered pair and returns the flat index of the largest
// off-diagonal entry (first occurrence; −1-free: defaults to 0·k+1,
// which exists because k ≥ 2 whenever the scorer runs). The inner sweep
// is two contiguous rows, so the compiler keeps it in registers; the
// `> best` fold skips NaN = (−Inf)−(−Inf) and lets +Inf (p>0 over q=0)
// win, matching logRatio's conventions exactly.
func maxRatioRow(lg, out []float64, k int) int32 {
	rowBest := math.Inf(-1)
	rowArg := int32(1) // flat (0, 1), the first off-diagonal pair
	for x := 0; x < k; x++ {
		a := lg[x*k : (x+1)*k]
		for xp := 0; xp < k; xp++ {
			q := lg[xp*k : (xp+1)*k]
			best := math.Inf(-1)
			for y, ay := range a {
				if d := ay - q[y]; d > best {
					best = d
				}
			}
			out[x*k+xp] = best
			if x != xp && best > rowBest {
				rowBest = best
				rowArg = int32(x*k + xp)
			}
		}
	}
	return rowArg
}
