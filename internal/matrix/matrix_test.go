package matrix

import (
	"math"
	"math/rand/v2"
	"testing"
	"testing/quick"

	"pufferfish/internal/floats"
)

func TestFromRowsAndAt(t *testing.T) {
	m := FromRows([][]float64{{1, 2}, {3, 4}})
	if r, c := m.Dims(); r != 2 || c != 2 {
		t.Fatalf("Dims = %d,%d", r, c)
	}
	if m.At(0, 1) != 2 || m.At(1, 0) != 3 {
		t.Error("At wrong")
	}
}

func TestFromRowsPanicsOnRagged(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on ragged rows")
		}
	}()
	FromRows([][]float64{{1, 2}, {3}})
}

func TestMul(t *testing.T) {
	a := FromRows([][]float64{{1, 2}, {3, 4}})
	b := FromRows([][]float64{{5, 6}, {7, 8}})
	got := a.Mul(b)
	want := FromRows([][]float64{{19, 22}, {43, 50}})
	if !floats.EqSlices(got.data, want.data, 1e-12) {
		t.Errorf("Mul = %v", got)
	}
}

func TestMulVecAndVecMul(t *testing.T) {
	a := FromRows([][]float64{{1, 2}, {3, 4}})
	if got := a.MulVec([]float64{1, 1}); !floats.EqSlices(got, []float64{3, 7}, 1e-12) {
		t.Errorf("MulVec = %v", got)
	}
	if got := a.VecMul([]float64{1, 1}); !floats.EqSlices(got, []float64{4, 6}, 1e-12) {
		t.Errorf("VecMul = %v", got)
	}
}

func TestPow(t *testing.T) {
	p := FromRows([][]float64{{0.9, 0.1}, {0.4, 0.6}})
	got := p.Pow(3)
	want := p.Mul(p).Mul(p)
	if !floats.EqSlices(got.data, want.data, 1e-12) {
		t.Errorf("Pow(3) mismatch")
	}
	if !floats.EqSlices(p.Pow(0).data, Identity(2).data, 0) {
		t.Error("Pow(0) != I")
	}
	if !floats.EqSlices(p.Pow(1).data, p.data, 0) {
		t.Error("Pow(1) != P")
	}
}

func TestTranspose(t *testing.T) {
	a := FromRows([][]float64{{1, 2, 3}, {4, 5, 6}})
	at := a.T()
	if r, c := at.Dims(); r != 3 || c != 2 {
		t.Fatalf("T dims = %d,%d", r, c)
	}
	if at.At(2, 1) != 6 || at.At(0, 1) != 4 {
		t.Error("T values wrong")
	}
}

func TestNorms(t *testing.T) {
	a := FromRows([][]float64{{1, -2}, {-3, 4}})
	if a.Norm1() != 6 { // col sums 4, 6
		t.Errorf("Norm1 = %v", a.Norm1())
	}
	if a.NormInf() != 7 { // row sums 3, 7
		t.Errorf("NormInf = %v", a.NormInf())
	}
	if !floats.Eq(a.NormFrob(), math.Sqrt(30), 1e-12) {
		t.Errorf("NormFrob = %v", a.NormFrob())
	}
	if a.MaxAbs() != 4 {
		t.Errorf("MaxAbs = %v", a.MaxAbs())
	}
}

func TestSolveAndInverse(t *testing.T) {
	a := FromRows([][]float64{{2, 1, -1}, {-3, -1, 2}, {-2, 1, 2}})
	b := []float64{8, -11, -3}
	x, err := Solve(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if !floats.EqSlices(x, []float64{2, 3, -1}, 1e-9) {
		t.Errorf("Solve = %v, want [2 3 -1]", x)
	}
	inv, err := Inverse(a)
	if err != nil {
		t.Fatal(err)
	}
	prod := a.Mul(inv)
	if !floats.EqSlices(prod.data, Identity(3).data, 1e-9) {
		t.Errorf("A·A⁻¹ != I:\n%v", prod)
	}
}

func TestSolveSingular(t *testing.T) {
	a := FromRows([][]float64{{1, 2}, {2, 4}})
	if _, err := Solve(a, []float64{1, 2}); err == nil {
		t.Error("expected ErrSingular")
	}
	if _, err := Inverse(a); err == nil {
		t.Error("expected ErrSingular for Inverse")
	}
}

// Property: Solve recovers a random x from b = A·x for well-conditioned
// random A.
func TestSolveRoundTrip(t *testing.T) {
	f := func(seed uint64) bool {
		r := rand.New(rand.NewPCG(seed, 7))
		n := 1 + r.IntN(6)
		a := NewDense(n, n)
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				a.Set(i, j, r.Float64()-0.5)
			}
			a.Set(i, i, a.At(i, i)+float64(n)) // diagonally dominant
		}
		x := make([]float64, n)
		for i := range x {
			x[i] = r.Float64()*4 - 2
		}
		b := a.MulVec(x)
		got, err := Solve(a, b)
		if err != nil {
			return false
		}
		return floats.EqSlices(got, x, 1e-7)
	}
	cfg := &quick.Config{MaxCount: 50}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestSolveTridiagonal(t *testing.T) {
	// Compare against the dense solver on a random tridiagonal system.
	rng := rand.New(rand.NewPCG(3, 4))
	n := 12
	tri := Tridiagonal{
		Sub:   make([]float64, n),
		Diag:  make([]float64, n),
		Super: make([]float64, n),
	}
	dense := NewDense(n, n)
	d := make([]float64, n)
	for i := 0; i < n; i++ {
		tri.Diag[i] = 2 + rng.Float64()
		dense.Set(i, i, tri.Diag[i])
		if i > 0 {
			tri.Sub[i] = rng.Float64() - 0.5
			dense.Set(i, i-1, tri.Sub[i])
		}
		if i < n-1 {
			tri.Super[i] = rng.Float64() - 0.5
			dense.Set(i, i+1, tri.Super[i])
		}
		d[i] = rng.Float64() * 3
	}
	want, err := Solve(dense, d)
	if err != nil {
		t.Fatal(err)
	}
	got, err := SolveTridiagonal(tri, d)
	if err != nil {
		t.Fatal(err)
	}
	if !floats.EqSlices(got, want, 1e-8) {
		t.Errorf("tridiagonal solve mismatch\n got %v\nwant %v", got, want)
	}
}

func TestSolveTridiagonalErrors(t *testing.T) {
	_, err := SolveTridiagonal(Tridiagonal{Sub: []float64{0}, Diag: []float64{0}, Super: []float64{0}}, []float64{1})
	if err == nil {
		t.Error("expected singular error for zero diagonal")
	}
	_, err = SolveTridiagonal(Tridiagonal{Sub: nil, Diag: []float64{1}, Super: nil}, []float64{1})
	if err == nil {
		t.Error("expected dimension error")
	}
}

func TestIsSymmetric(t *testing.T) {
	if !FromRows([][]float64{{1, 2}, {2, 3}}).IsSymmetric(0) {
		t.Error("symmetric matrix rejected")
	}
	if FromRows([][]float64{{1, 2}, {2.1, 3}}).IsSymmetric(1e-3) {
		t.Error("asymmetric matrix accepted")
	}
	if FromRows([][]float64{{1, 2, 3}, {4, 5, 6}}).IsSymmetric(1) {
		t.Error("non-square matrix accepted as symmetric")
	}
}

func TestAddSubScale(t *testing.T) {
	a := FromRows([][]float64{{1, 2}, {3, 4}})
	b := FromRows([][]float64{{4, 3}, {2, 1}})
	if !floats.EqSlices(a.Add(b).data, []float64{5, 5, 5, 5}, 0) {
		t.Error("Add wrong")
	}
	if !floats.EqSlices(a.Sub(a).data, []float64{0, 0, 0, 0}, 0) {
		t.Error("Sub wrong")
	}
	if !floats.EqSlices(a.Scale(2).data, []float64{2, 4, 6, 8}, 0) {
		t.Error("Scale wrong")
	}
}
