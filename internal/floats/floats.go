// Package floats provides small floating-point helpers shared by the
// numeric substrates: tolerant comparison, log-space accumulation, and
// simple slice statistics.
//
// Everything here operates on float64 and the Go standard library only.
package floats

import (
	"fmt"
	"math"
)

// DefaultTol is the absolute/relative tolerance used by the Eq helpers
// when callers do not care about a specific precision.
const DefaultTol = 1e-9

// Eq reports whether a and b are equal within absolute tolerance tol or
// relative tolerance tol (whichever is more permissive). NaNs are never
// equal; equal infinities are.
func Eq(a, b, tol float64) bool {
	if math.IsNaN(a) || math.IsNaN(b) {
		return false
	}
	//privlint:allow floatcompare bit-equality fast path of the tolerance comparator itself
	if a == b {
		return true
	}
	if math.IsInf(a, 0) || math.IsInf(b, 0) {
		return false
	}
	diff := math.Abs(a - b)
	if diff <= tol {
		return true
	}
	scale := math.Max(math.Abs(a), math.Abs(b))
	return diff <= tol*scale
}

// EqSlices reports whether two slices have the same length and are
// element-wise equal within tol.
func EqSlices(a, b []float64, tol float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if !Eq(a[i], b[i], tol) {
			return false
		}
	}
	return true
}

// Sum returns the Kahan-compensated sum of xs. Compensation matters for
// the long probability vectors produced by the power-consumption
// substrate (10^6 terms).
func Sum(xs []float64) float64 {
	var sum, comp float64
	for _, x := range xs {
		y := x - comp
		t := sum + y
		comp = (t - sum) - y
		sum = t
	}
	return sum
}

// Dot returns the inner product of a and b. It panics if the lengths
// differ, as that is always a programming error in this codebase.
func Dot(a, b []float64) float64 {
	if len(a) != len(b) {
		panic(fmt.Sprintf("floats: dot of mismatched lengths %d and %d", len(a), len(b)))
	}
	var sum float64
	for i := range a {
		sum += a[i] * b[i]
	}
	return sum
}

// L1Dist returns the L1 distance Σ|a_i − b_i|. It panics on mismatched
// lengths.
func L1Dist(a, b []float64) float64 {
	if len(a) != len(b) {
		panic(fmt.Sprintf("floats: l1 distance of mismatched lengths %d and %d", len(a), len(b)))
	}
	var sum float64
	for i := range a {
		sum += math.Abs(a[i] - b[i])
	}
	return sum
}

// LogSumExp returns log(Σ exp(x_i)) computed stably. It returns -Inf
// for an empty slice.
func LogSumExp(xs []float64) float64 {
	if len(xs) == 0 {
		return math.Inf(-1)
	}
	maxv := math.Inf(-1)
	for _, x := range xs {
		if x > maxv {
			maxv = x
		}
	}
	if math.IsInf(maxv, -1) {
		return maxv
	}
	var sum float64
	for _, x := range xs {
		sum += math.Exp(x - maxv)
	}
	return maxv + math.Log(sum)
}

// Max returns the maximum of xs. It panics on an empty slice.
func Max(xs []float64) float64 {
	if len(xs) == 0 {
		panic("floats: Max of empty slice")
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	return m
}

// Min returns the minimum of xs. It panics on an empty slice.
func Min(xs []float64) float64 {
	if len(xs) == 0 {
		panic("floats: Min of empty slice")
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x < m {
			m = x
		}
	}
	return m
}

// ArgMax returns the index of the first maximal element. It panics on
// an empty slice.
func ArgMax(xs []float64) int {
	if len(xs) == 0 {
		panic("floats: ArgMax of empty slice")
	}
	best := 0
	for i, x := range xs {
		if x > xs[best] {
			best = i
		}
	}
	return best
}

// Mean returns the arithmetic mean of xs, or 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	return Sum(xs) / float64(len(xs))
}

// Normalize scales xs in place so it sums to one and returns an error
// if the sum is not positive and finite.
func Normalize(xs []float64) error {
	s := Sum(xs)
	if !(s > 0) || math.IsInf(s, 0) {
		return fmt.Errorf("floats: cannot normalize slice with sum %v", s)
	}
	for i := range xs {
		xs[i] /= s
	}
	return nil
}

// IsProbVector reports whether xs is entry-wise in [−tol, 1+tol] and
// sums to 1 within tol.
func IsProbVector(xs []float64, tol float64) bool {
	for _, x := range xs {
		if math.IsNaN(x) || x < -tol || x > 1+tol {
			return false
		}
	}
	return Eq(Sum(xs), 1, tol)
}

// Clamp limits x to the closed interval [lo, hi].
func Clamp(x, lo, hi float64) float64 {
	if x < lo {
		return lo
	}
	if x > hi {
		return hi
	}
	return x
}

// Linspace returns n evenly spaced values from lo to hi inclusive.
// It panics if n < 2.
func Linspace(lo, hi float64, n int) []float64 {
	if n < 2 {
		panic("floats: Linspace needs n >= 2")
	}
	out := make([]float64, n)
	step := (hi - lo) / float64(n-1)
	for i := range out {
		out[i] = lo + float64(i)*step
	}
	out[n-1] = hi
	return out
}
