package floats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestEq(t *testing.T) {
	cases := []struct {
		a, b, tol float64
		want      bool
	}{
		{1, 1, 0, true},
		{1, 1 + 1e-12, 1e-9, true},
		{1, 1.1, 1e-9, false},
		{0, 1e-12, 1e-9, true},
		{math.Inf(1), math.Inf(1), 1e-9, true},
		{math.Inf(1), math.Inf(-1), 1e-9, false},
		{math.NaN(), math.NaN(), 1e-9, false},
		{1e18, 1e18 + 1e6, 1e-9, true}, // relative tolerance path
	}
	for _, c := range cases {
		if got := Eq(c.a, c.b, c.tol); got != c.want {
			t.Errorf("Eq(%v,%v,%v) = %v, want %v", c.a, c.b, c.tol, got, c.want)
		}
	}
}

func TestSumKahan(t *testing.T) {
	// 0.1 added 10^6 times: naive summation drifts; Kahan should be
	// within 1e-9 of 1e5.
	xs := make([]float64, 1_000_000)
	for i := range xs {
		xs[i] = 0.1
	}
	if got := Sum(xs); !Eq(got, 1e5, 1e-9) {
		t.Errorf("Sum = %v, want 1e5", got)
	}
}

func TestDotAndL1(t *testing.T) {
	a := []float64{1, 2, 3}
	b := []float64{4, 5, 6}
	if got := Dot(a, b); got != 32 {
		t.Errorf("Dot = %v, want 32", got)
	}
	if got := L1Dist(a, b); got != 9 {
		t.Errorf("L1Dist = %v, want 9", got)
	}
}

func TestDotPanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for mismatched lengths")
		}
	}()
	Dot([]float64{1}, []float64{1, 2})
}

func TestLogSumExp(t *testing.T) {
	xs := []float64{math.Log(1), math.Log(2), math.Log(3)}
	if got := LogSumExp(xs); !Eq(got, math.Log(6), 1e-12) {
		t.Errorf("LogSumExp = %v, want log 6", got)
	}
	if got := LogSumExp(nil); !math.IsInf(got, -1) {
		t.Errorf("LogSumExp(nil) = %v, want -Inf", got)
	}
	// Stability with large values.
	if got := LogSumExp([]float64{1000, 1000}); !Eq(got, 1000+math.Log(2), 1e-9) {
		t.Errorf("LogSumExp large = %v", got)
	}
}

func TestLogSumExpProperty(t *testing.T) {
	// exp(LogSumExp(xs)) == Σ exp(xs) for small inputs.
	f := func(raw []float64) bool {
		if len(raw) == 0 {
			return true
		}
		xs := make([]float64, 0, len(raw))
		var direct float64
		for _, r := range raw {
			x := math.Mod(r, 5) // keep exp in range
			if math.IsNaN(x) {
				return true
			}
			xs = append(xs, x)
			direct += math.Exp(x)
		}
		return Eq(math.Exp(LogSumExp(xs)), direct, 1e-9)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMinMaxArgMax(t *testing.T) {
	xs := []float64{3, -1, 7, 7, 2}
	if Max(xs) != 7 || Min(xs) != -1 || ArgMax(xs) != 2 {
		t.Errorf("Max/Min/ArgMax wrong: %v %v %v", Max(xs), Min(xs), ArgMax(xs))
	}
}

func TestNormalize(t *testing.T) {
	xs := []float64{1, 3}
	if err := Normalize(xs); err != nil {
		t.Fatal(err)
	}
	if !EqSlices(xs, []float64{0.25, 0.75}, 1e-12) {
		t.Errorf("Normalize = %v", xs)
	}
	if err := Normalize([]float64{0, 0}); err == nil {
		t.Error("expected error normalizing zero vector")
	}
	if err := Normalize([]float64{-1, 1}); err == nil {
		t.Error("expected error normalizing zero-sum vector")
	}
}

func TestIsProbVector(t *testing.T) {
	if !IsProbVector([]float64{0.5, 0.5}, 1e-9) {
		t.Error("valid prob vector rejected")
	}
	if IsProbVector([]float64{0.6, 0.6}, 1e-9) {
		t.Error("sum-1.2 vector accepted")
	}
	if IsProbVector([]float64{1.5, -0.5}, 1e-9) {
		t.Error("out-of-range vector accepted")
	}
}

func TestLinspace(t *testing.T) {
	got := Linspace(0, 1, 5)
	want := []float64{0, 0.25, 0.5, 0.75, 1}
	if !EqSlices(got, want, 1e-12) {
		t.Errorf("Linspace = %v, want %v", got, want)
	}
}

func TestClamp(t *testing.T) {
	if Clamp(5, 0, 1) != 1 || Clamp(-5, 0, 1) != 0 || Clamp(0.5, 0, 1) != 0.5 {
		t.Error("Clamp wrong")
	}
}

func TestMean(t *testing.T) {
	if Mean(nil) != 0 {
		t.Error("Mean(nil) != 0")
	}
	if got := Mean([]float64{1, 2, 3}); !Eq(got, 2, 1e-12) {
		t.Errorf("Mean = %v", got)
	}
}
