package floats

import "sync"

// The buffer pool recycles float64 slices across the hot paths that
// need variable-length scratch (the Wasserstein count-distribution
// dynamic programs, the convolution candidate arrays). It is a small
// mutex-guarded free list rather than a sync.Pool: entries are slice
// headers stored in a slice, so neither Get nor Put boxes anything and
// the steady state allocates exactly nothing.
var bufPool struct {
	mu   sync.Mutex
	free [][]float64
}

// maxPooledBuffers bounds the free list so a burst of large scratch
// buffers cannot pin memory forever.
const maxPooledBuffers = 64

// GetBuffer returns a pooled slice of length n with unspecified
// contents. Release it with PutBuffer when done; do not use it after.
func GetBuffer(n int) []float64 {
	bufPool.mu.Lock()
	// Last-fit scan from the tail keeps the common case (same sizes
	// cycling) O(1).
	for i := len(bufPool.free) - 1; i >= 0; i-- {
		if cap(bufPool.free[i]) >= n {
			buf := bufPool.free[i]
			last := len(bufPool.free) - 1
			bufPool.free[i] = bufPool.free[last]
			bufPool.free[last] = nil
			bufPool.free = bufPool.free[:last]
			bufPool.mu.Unlock()
			return buf[:n]
		}
	}
	bufPool.mu.Unlock()
	return make([]float64, n)
}

// PutBuffer returns a slice obtained from GetBuffer (or any
// caller-owned scratch) to the pool.
func PutBuffer(buf []float64) {
	if cap(buf) == 0 {
		return
	}
	bufPool.mu.Lock()
	if len(bufPool.free) < maxPooledBuffers {
		bufPool.free = append(bufPool.free, buf[:cap(buf)])
	}
	bufPool.mu.Unlock()
}

// ZeroBuffer sets every element of buf to zero.
func ZeroBuffer(buf []float64) {
	for i := range buf {
		buf[i] = 0
	}
}
