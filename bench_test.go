// Benchmarks regenerating every table and figure of the paper's
// evaluation (reduced sizes; the cmd/pufferbench CLI runs paper-scale
// versions), plus ablation benchmarks for the design choices called
// out in DESIGN.md §4: the stationary-initial shortcut, the
// Lemma 4.9/C.4 fast path, the Appendix C.4 closed form, and the
// quantile-coupling ∞-Wasserstein computation.
package pufferfish_test

import (
	"math/rand/v2"
	"testing"

	"pufferfish"
	"pufferfish/internal/dist"
	"pufferfish/internal/experiments"
	"pufferfish/internal/markov"
)

// BenchmarkFig4Top regenerates Figure 4's upper row (synthetic binary
// chains, one ε panel, reduced trials).
func BenchmarkFig4Top(b *testing.B) {
	cfg := experiments.Fig4TopConfig{
		Epsilons: []float64{1},
		Alphas:   []float64{0.1, 0.2, 0.3, 0.4},
		T:        100,
		Trials:   50,
		GridN:    5,
		Seed:     21,
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig4Top(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig4BottomAndTable1 regenerates Figure 4's lower row and
// Table 1 (they share the activity experiment).
func BenchmarkFig4BottomAndTable1(b *testing.B) {
	cfg := experiments.ActivityConfig{
		Eps: 1, Trials: 5, Smoothing: 0.5, PopulationScale: 0.15, Seed: 22,
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.ActivityExperiment(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable2 regenerates Table 2 (noise-scale timing comparison).
func BenchmarkTable2(b *testing.B) {
	cfg := experiments.TimingConfig{
		Eps: 1, Repeats: 1, SyntheticT: 100, SyntheticGridStep: 0.4,
		PowerT: 50_000, PopulationScale: 0.1, Smoothing: 0.5, Seed: 23,
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.TimingExperiment(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable3 regenerates Table 3 (electricity histogram errors).
func BenchmarkTable3(b *testing.B) {
	cfg := experiments.PowerConfig{
		T: 50_000, Epsilons: []float64{1}, Trials: 5, Smoothing: 0.5, Seed: 24,
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.PowerExperiment(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFluExample regenerates the Section 3.1 worked example (the
// Wasserstein Mechanism's scale computation on the flu model).
func BenchmarkFluExample(b *testing.B) {
	clique, err := pufferfish.NewFluClique([]float64{0.1, 0.15, 0.5, 0.15, 0.1})
	if err != nil {
		b.Fatal(err)
	}
	model, err := pufferfish.NewFluModel([]pufferfish.FluClique{clique, clique, clique})
	if err != nil {
		b.Fatal(err)
	}
	inst := pufferfish.FluInstance{Models: []*pufferfish.FluModel{model}}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := pufferfish.WassersteinScale(inst); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkWorkedExamples regenerates every prose example at once.
func BenchmarkWorkedExamples(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.RunWorkedExamples(); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Ablations -------------------------------------------------------

func stationaryBinaryClass(b *testing.B, T int) pufferfish.Class {
	b.Helper()
	chain, err := markov.BinaryChain(0.5, 0.9, 0.85).StationaryChain()
	if err != nil {
		b.Fatal(err)
	}
	class, err := pufferfish.NewFinite([]pufferfish.Chain{chain}, T)
	if err != nil {
		b.Fatal(err)
	}
	return class
}

// BenchmarkExactScoreShortcut measures MQMExact with the
// stationary-initial shortcut (Section 4.4.1)…
func BenchmarkExactScoreShortcut(b *testing.B) {
	class := stationaryBinaryClass(b, 2000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := pufferfish.ExactScore(class, 1, pufferfish.ExactOptions{}); err != nil {
			b.Fatal(err)
		}
	}
}

// …and BenchmarkExactScoreFullSweep the ablation without it.
func BenchmarkExactScoreFullSweep(b *testing.B) {
	class := stationaryBinaryClass(b, 2000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := pufferfish.ExactScore(class, 1, pufferfish.ExactOptions{ForceFullSweep: true}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkApproxScoreFastPath measures MQMApprox with the Lemma 4.9 /
// C.4 middle-node fast path…
func BenchmarkApproxScoreFastPath(b *testing.B) {
	class := stationaryBinaryClass(b, 100_000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := pufferfish.ApproxScore(class, 1, pufferfish.ApproxOptions{}); err != nil {
			b.Fatal(err)
		}
	}
}

// …and BenchmarkApproxScoreFullSweep the per-node ablation (smaller T:
// the sweep is O(T·ℓ²)).
func BenchmarkApproxScoreFullSweep(b *testing.B) {
	class := stationaryBinaryClass(b, 2000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := pufferfish.ApproxScore(class, 1, pufferfish.ApproxOptions{ForceFullSweep: true}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkExactScoreC4 measures the Appendix C.4 closed-form
// optimization over all initial distributions (the BinaryInterval
// class) against BenchmarkExactScoreInitGrid, the ablation that grids
// initial distributions explicitly.
func BenchmarkExactScoreC4(b *testing.B) {
	class, err := pufferfish.NewBinaryInterval(0.2, 0.8, 100)
	if err != nil {
		b.Fatal(err)
	}
	class.GridN = 3
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := pufferfish.ExactScore(class, 1, pufferfish.ExactOptions{}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkExactScoreInitGrid(b *testing.B) {
	// Same transition grid as BenchmarkExactScoreC4, but with the
	// initial distributions gridded explicitly (5 points on the
	// simplex edge) instead of optimized in closed form.
	var chains []pufferfish.Chain
	for _, p0 := range []float64{0.2, 0.5, 0.8} {
		for _, p1 := range []float64{0.2, 0.5, 0.8} {
			for _, q0 := range []float64{0.01, 0.25, 0.5, 0.75, 0.99} {
				chains = append(chains, pufferfish.BinaryChain(q0, p0, p1))
			}
		}
	}
	class, err := pufferfish.NewFinite(chains, 100)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := pufferfish.ExactScore(class, 1, pufferfish.ExactOptions{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkWassersteinQuantile measures the O(n) quantile-coupling W∞
// against BenchmarkWassersteinFlow, the max-flow feasibility search.
func BenchmarkWassersteinQuantile(b *testing.B) {
	mu, nu := benchDistPair(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dist.WassersteinInf(mu, nu)
	}
}

func BenchmarkWassersteinFlow(b *testing.B) {
	mu, nu := benchDistPair(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dist.WassersteinInfFlow(mu, nu)
	}
}

func benchDistPair(b *testing.B) (dist.Discrete, dist.Discrete) {
	b.Helper()
	rng := rand.New(rand.NewPCG(31, 32))
	mk := func() dist.Discrete {
		xs := make([]float64, 20)
		ps := make([]float64, 20)
		var tot float64
		for i := range xs {
			xs[i] = float64(i) + rng.Float64()*0.5
			ps[i] = rng.Float64() + 0.05
			tot += ps[i]
		}
		for i := range ps {
			ps[i] /= tot
		}
		d, err := dist.New(xs, ps)
		if err != nil {
			b.Fatal(err)
		}
		return d
	}
	return mk(), mk()
}

// --- Scoring engine: serial vs parallel --------------------------------
//
// benchstat-friendly sub-benchmark pairs for the shared scoring
// engine; `pufferbench bench` tracks the same workloads in
// BENCH_1.json. Parallelism 1 is the serial path, 0 uses every CPU;
// results are bit-for-bit identical (see TestExactScoreParallelGolden).

var engineLevels = []struct {
	name string
	par  int
}{{"serial", 1}, {"parallel", 0}}

func BenchmarkExactScoreEngine(b *testing.B) {
	class := stationaryBinaryClass(b, 2000)
	for _, lv := range engineLevels {
		b.Run(lv.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				opt := pufferfish.ExactOptions{ForceFullSweep: true, Parallelism: lv.par}
				if _, err := pufferfish.ExactScore(class, 1, opt); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkApproxScoreEngine(b *testing.B) {
	class := stationaryBinaryClass(b, 2000)
	for _, lv := range engineLevels {
		b.Run(lv.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				opt := pufferfish.ApproxOptions{ForceFullSweep: true, Parallelism: lv.par}
				if _, err := pufferfish.ApproxScore(class, 1, opt); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkWassersteinScaleEngine(b *testing.B) {
	class, err := pufferfish.NewFinite([]pufferfish.Chain{markov.BinaryChain(0.5, 0.8, 0.7)}, 30)
	if err != nil {
		b.Fatal(err)
	}
	for _, lv := range engineLevels {
		b.Run(lv.name, func(b *testing.B) {
			b.ReportAllocs()
			inst := pufferfish.ChainCountInstance{Class: class, W: []int{0, 1}, Parallelism: lv.par}
			for i := 0; i < b.N; i++ {
				if _, _, err := pufferfish.WassersteinScaleOpt(inst, pufferfish.WassersteinOptions{Parallelism: lv.par}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- Score cache / batch ----------------------------------------------
//
// benchstat-friendly pairs for the memoizing layer: each variant
// against its ablation baseline. `pufferbench bench` tracks the same
// workloads in BENCH_2.json.

// BenchmarkCompositionRepeatedRelease measures the Theorem 4.4 regime
// — 100 releases over one unchanged class, each session with its own
// accounting — with the score cache disabled vs enabled. Scores and
// released values are bit-identical in both variants (pinned by
// TestCompositionCachedBitIdentical).
func BenchmarkCompositionRepeatedRelease(b *testing.B) {
	const T, releases = 2000, 100
	class := stationaryBinaryClass(b, T)
	data := make([]int, T)
	for i := range data {
		data[i] = i % 2
	}
	q := pufferfish.RelFreqHistogram{K: 2, N: len(data)}
	loop := func(cache *pufferfish.ScoreCache) error {
		rng := rand.New(rand.NewPCG(103, 104))
		for i := 0; i < releases; i++ {
			comp := pufferfish.NewExactComposition(class, pufferfish.ExactOptions{}).WithCache(cache)
			if _, err := comp.Release(data, q, 1, rng); err != nil {
				return err
			}
		}
		return nil
	}
	b.Run("uncached", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if err := loop(nil); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("cached", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if err := loop(pufferfish.NewScoreCache()); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkScoreBatch measures batched scoring of eight classes with
// two distinct fingerprints against the per-class loop it replaces.
func BenchmarkScoreBatch(b *testing.B) {
	chains := []pufferfish.Chain{
		markov.BinaryChain(0.5, 0.9, 0.85),
		markov.BinaryChain(0.5, 0.8, 0.7),
	}
	classes := make([]pufferfish.Class, 8)
	for i := range classes {
		class, err := pufferfish.NewFinite([]pufferfish.Chain{chains[i%2]}, 500)
		if err != nil {
			b.Fatal(err)
		}
		classes[i] = class
	}
	b.Run("individual", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			for _, class := range classes {
				if _, err := pufferfish.ExactScore(class, 1, pufferfish.ExactOptions{}); err != nil {
					b.Fatal(err)
				}
			}
		}
	})
	b.Run("batch", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := pufferfish.ScoreBatch(nil, classes, 1, pufferfish.ExactOptions{}); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkMQMExactPower51 isolates the k = 51 scoring cost that
// dominates the electricity column of Table 2.
func BenchmarkMQMExactPower51(b *testing.B) {
	rng := rand.New(rand.NewPCG(41, 42))
	series, err := pufferfish.SimulatePower(pufferfish.DefaultPowerHouse(), 50_000, rng)
	if err != nil {
		b.Fatal(err)
	}
	chain, err := pufferfish.EstimateStationaryChain([][]int{series}, pufferfish.PowerNumBins, 0.5)
	if err != nil {
		b.Fatal(err)
	}
	class, err := pufferfish.NewSingleton(chain, 50_000)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := pufferfish.ExactScore(class, 1, pufferfish.ExactOptions{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkGK16Sigma measures the reconstructed baseline's scale
// computation.
func BenchmarkGK16Sigma(b *testing.B) {
	class, err := pufferfish.NewBinaryInterval(0.35, 0.65, 100_000)
	if err != nil {
		b.Fatal(err)
	}
	class.GridN = 5
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := pufferfish.GK16Sigma(class, 1); err != nil {
			b.Fatal(err)
		}
	}
}
